"""Round execution engine: pluggable serial/parallel/cohort executors.

The server loop delegates each round's batch of independent local solves —
and federation-level evaluation — to a :class:`RoundExecutor`:

* :class:`SerialExecutor` — in-process sequential execution (default;
  the historical trainer behavior).
* :class:`ParallelExecutor` — persistent multiprocess workers, each
  holding its own model replica and data shard.
* :class:`CohortExecutor` — in-process *stacked* execution: all selected
  clients' proximal SGD epochs advance simultaneously through batched
  ``(K, d)`` NumPy kernels (the local-solve hot path's fast path).

All produce bit-comparable training histories for the same configuration;
see :mod:`repro.runtime.executor` for the determinism contract,
:mod:`repro.runtime.cohort` for the stacked local-solve fast path, and
:mod:`repro.runtime.evaluation` for the vectorized evaluation fast paths.

All three executors emit the same telemetry event schema
(:mod:`repro.telemetry`): the trainer's round/phase spans are
executor-agnostic, per-client solve timings ride on
:class:`~repro.core.client.ClientUpdate` payloads (so parallel workers'
spans survive the process boundary), and the cohort executor adds stacked
kernel phase-split spans.
"""

from .cohort import CohortExecutor, solve_cohort
from .evaluation import (
    EVAL_MODES,
    STACKED_EVAL_BLOCK,
    FederationEvaluator,
    no_test_samples_error,
    resolve_eval_mode,
)
from .executor import LocalTask, RoundExecutor, SerialExecutor, task_rng
from .parallel import ParallelExecutor
from .sampled import EvalEstimate, SampledEvaluator, StratifiedClientSampler

#: The executor spec grammar: mode name -> accepted spec strings.  A spec
#: is ``mode`` or ``mode:argument``; only ``parallel`` takes an argument
#: (its worker count).  ``make_executor`` and the trainer's ``executor=``
#: option accept exactly these strings.
EXECUTOR_MODES = {
    "serial": 'spec "serial" — in-process sequential execution (default)',
    "parallel": (
        'specs "parallel", "parallel:N" (N worker processes), or '
        '"parallel:auto" (match the host core count) — persistent '
        "multiprocess workers"
    ),
    "cohort": (
        'spec "cohort" — stacked (K, d) NumPy kernels advancing all '
        "selected clients simultaneously"
    ),
}


def parse_executor_spec(spec: str):
    """Parse an executor spec string into ``(mode, kwargs)``.

    The single place worker counts are parsed: ``"parallel:4"`` →
    ``("parallel", {"n_workers": 4})``, ``"parallel:auto"`` →
    ``("parallel", {"n_workers": "auto"})``.  ``serial``/``cohort`` take
    no argument; an argument on them — or a malformed worker count — is a
    ``ValueError``.
    """
    if not isinstance(spec, str):
        raise TypeError(f"executor spec must be a string, got {type(spec).__name__}")
    mode, sep, argument = spec.partition(":")
    if mode not in EXECUTOR_MODES:
        raise ValueError(
            f"unknown executor mode {mode!r}; expected one of "
            f"{tuple(EXECUTOR_MODES)}"
        )
    if not sep:
        return mode, {}
    if mode != "parallel":
        raise ValueError(
            f"executor mode {mode!r} takes no argument (got {spec!r}); "
            'only "parallel:N" / "parallel:auto" are parameterized'
        )
    if argument == "auto":
        return mode, {"n_workers": "auto"}
    try:
        n_workers = int(argument)
    except ValueError:
        raise ValueError(
            f"bad worker count {argument!r} in executor spec {spec!r}; "
            'expected "parallel:N" with integer N, or "parallel:auto"'
        ) from None
    if n_workers < 1:
        raise ValueError(f"worker count must be at least 1, got {n_workers}")
    return mode, {"n_workers": n_workers}


def make_executor(spec: str, **kwargs) -> RoundExecutor:
    """Build a round executor from a spec string (see :data:`EXECUTOR_MODES`).

    Extra ``kwargs`` are forwarded to the executor constructor (e.g.
    ``start_method`` for ``"parallel"``); a worker count may come from the
    spec *or* ``n_workers=``, not both.  The trainer accepts these spec
    strings directly in its ``executor`` argument.
    """
    mode, spec_kwargs = parse_executor_spec(spec)
    overlap = set(spec_kwargs) & set(kwargs)
    if overlap:
        raise ValueError(
            f"executor spec {spec!r} already sets {sorted(overlap)}; "
            "pass the worker count in the spec or as a keyword, not both"
        )
    kwargs = {**spec_kwargs, **kwargs}
    if mode == "serial":
        return SerialExecutor(**kwargs)
    if mode == "parallel":
        return ParallelExecutor(**kwargs)
    return CohortExecutor(**kwargs)


__all__ = [
    "RoundExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "CohortExecutor",
    "solve_cohort",
    "make_executor",
    "parse_executor_spec",
    "EXECUTOR_MODES",
    "LocalTask",
    "task_rng",
    "FederationEvaluator",
    "resolve_eval_mode",
    "no_test_samples_error",
    "EVAL_MODES",
    "STACKED_EVAL_BLOCK",
    "SampledEvaluator",
    "StratifiedClientSampler",
    "EvalEstimate",
]
