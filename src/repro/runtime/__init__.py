"""Round execution engine: pluggable serial/parallel/cohort executors.

The server loop delegates each round's batch of independent local solves —
and federation-level evaluation — to a :class:`RoundExecutor`:

* :class:`SerialExecutor` — in-process sequential execution (default;
  the historical trainer behavior).
* :class:`ParallelExecutor` — persistent multiprocess workers, each
  holding its own model replica and data shard.
* :class:`CohortExecutor` — in-process *stacked* execution: all selected
  clients' proximal SGD epochs advance simultaneously through batched
  ``(K, d)`` NumPy kernels (the local-solve hot path's fast path).

All produce bit-comparable training histories for the same configuration;
see :mod:`repro.runtime.executor` for the determinism contract,
:mod:`repro.runtime.cohort` for the stacked local-solve fast path, and
:mod:`repro.runtime.evaluation` for the vectorized evaluation fast paths.

All three executors emit the same telemetry event schema
(:mod:`repro.telemetry`): the trainer's round/phase spans are
executor-agnostic, per-client solve timings ride on
:class:`~repro.core.client.ClientUpdate` payloads (so parallel workers'
spans survive the process boundary), and the cohort executor adds stacked
kernel phase-split spans.
"""

from .cohort import CohortExecutor, solve_cohort
from .evaluation import (
    EVAL_MODES,
    STACKED_EVAL_BLOCK,
    FederationEvaluator,
    no_test_samples_error,
    resolve_eval_mode,
)
from .executor import LocalTask, RoundExecutor, SerialExecutor, task_rng
from .parallel import ParallelExecutor

EXECUTOR_MODES = ("serial", "parallel", "cohort")


def make_executor(mode: str, **kwargs) -> RoundExecutor:
    """Build a round executor from its mode name.

    ``kwargs`` are forwarded to the executor constructor (e.g.
    ``n_workers`` for ``"parallel"``).  The trainer accepts these mode
    strings directly in its ``executor`` argument.
    """
    if mode == "serial":
        return SerialExecutor(**kwargs)
    if mode == "parallel":
        return ParallelExecutor(**kwargs)
    if mode == "cohort":
        return CohortExecutor(**kwargs)
    raise ValueError(
        f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}"
    )


__all__ = [
    "RoundExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "CohortExecutor",
    "solve_cohort",
    "make_executor",
    "EXECUTOR_MODES",
    "LocalTask",
    "task_rng",
    "FederationEvaluator",
    "resolve_eval_mode",
    "no_test_samples_error",
    "EVAL_MODES",
    "STACKED_EVAL_BLOCK",
]
