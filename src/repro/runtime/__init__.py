"""Round execution engine: pluggable serial/parallel round executors.

The server loop delegates each round's batch of independent local solves —
and federation-level evaluation — to a :class:`RoundExecutor`:

* :class:`SerialExecutor` — in-process sequential execution (default;
  the historical trainer behavior).
* :class:`ParallelExecutor` — persistent multiprocess workers, each
  holding its own model replica and data shard.

Both produce bit-identical training histories for the same configuration;
see :mod:`repro.runtime.executor` for the determinism contract and
:mod:`repro.runtime.evaluation` for the vectorized evaluation fast paths.
"""

from .evaluation import (
    EVAL_MODES,
    STACKED_EVAL_BLOCK,
    FederationEvaluator,
    no_test_samples_error,
    resolve_eval_mode,
)
from .executor import LocalTask, RoundExecutor, SerialExecutor, task_rng
from .parallel import ParallelExecutor

__all__ = [
    "RoundExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "LocalTask",
    "task_rng",
    "FederationEvaluator",
    "resolve_eval_mode",
    "no_test_samples_error",
    "EVAL_MODES",
    "STACKED_EVAL_BLOCK",
]
