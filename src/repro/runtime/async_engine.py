"""Event-driven, stale-tolerant round execution: :class:`AsyncExecutor`.

The synchronous executors are barriers: every selected device's update must
land before the round aggregates.  FedProx's convergence analysis tolerates
much looser coordination — local work is already γ-inexact, and the
dissimilarity-bounded guarantees survive bounded model-version lag — so
this engine lets clients *check in continuously* on a simulated clock and
aggregates whatever has arrived, discounting updates by their staleness.

Time model
----------
Simulated time is measured in aggregation rounds.  A task submitted at
round ``r`` checks in at ``r + duration / period``, where ``duration`` is
the device's simulated round-trip from the shared
:class:`~repro.systems.clock.Clock` protocol (synchronized / seeded
log-normal / systems-model device profiles) and ``period`` is the clock's
aggregation cadence.  At round ``r`` the engine delivers every queued
check-in with arrival time ≤ ``r + 1``, in arrival order; an update
submitted at round ``s`` and delivered at round ``r`` has staleness
``r − s`` model versions.  Entries that would exceed the bounded-staleness
``window`` at the next round are discarded (counted, never aggregated), and
when a bounded in-flight ``capacity`` is set, check-ins beyond it are
rejected at admission — backpressure under churn.

Staleness discounting
---------------------
Delivered updates carry a multiplicative weight discount:
``poly``: ``(1 + s)^(-power)``; ``const``: ``factor`` for any ``s > 0``.
Fresh updates (``s = 0``) are never discounted.  The sampling scheme folds
the discounts into its aggregation weights (see
:meth:`repro.core.sampling.SamplingScheme.aggregate`), renormalizing so the
aggregate stays a convex combination.

Parity oracle
-------------
With ``window=0`` and synchronized arrivals every check-in lands instantly
(arrival = submission round, staleness 0, discount 1), delivery order
equals submission order, and the engine reproduces
:class:`~repro.runtime.executor.SerialExecutor` histories bit-identically —
including fault retry waves, since each retry dispatch drains its own
wave's check-ins in task order.  This degenerate mode is the test suite's
equivalence anchor for the whole engine.

Determinism
-----------
Every solve is a pure function of its :class:`~repro.runtime.executor.LocalTask`
(the executor contract) and every arrival time is a pure function of
``(clock seed, round, device)``, so the full async schedule — admissions,
deliveries, discards, and aggregation order — replays bit-identically from
a run-ledger manifest.  Telemetry (``async:*`` spans, queue-depth /
staleness / discard gauges) never influences the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..systems.clock import Clock, SynchronizedClock, resolve_clock
from .executor import (
    LocalTask,
    RoundExecutor,
    solve_with_timings,
    task_round,
)

#: Accepted staleness-discount families.
DISCOUNTS = ("poly", "const")


@dataclass(frozen=True)
class _QueuedCheckin:
    """One in-flight local solve awaiting delivery."""

    arrival: float  #: simulated check-in time, in round units
    seq: int  #: admission order, tie-breaks equal arrivals
    submit_round: int  #: round whose model version the task solves against
    task: LocalTask


class AsyncExecutor(RoundExecutor):
    """Bounded-staleness asynchronous round engine.

    Parameters
    ----------
    window:
        Maximum tolerated model-version lag.  An update submitted at round
        ``s`` may be aggregated at any round ``r`` with ``r − s ≤ window``;
        older entries are discarded.  ``0`` (default) accepts only fresh
        updates — with synchronized arrivals that is exactly the serial
        engine.
    discount:
        Staleness-discount family: ``"poly"`` (``(1+s)^(-power)``) or
        ``"const"`` (``factor`` for any stale update).
    discount_power, discount_factor:
        Parameters of the two families.
    capacity:
        Bounded in-flight queue size; admission rejects check-ins beyond
        it (``0`` = unbounded, the default).
    arrivals:
        Arrival clock: ``"synchronized"`` (instant — the parity oracle),
        ``"seeded"`` (log-normal latency from the run seed), or
        ``"systems"`` (device cost profiles from the trainer's
        ``ClockDrivenSystems`` model).  See
        :func:`repro.systems.clock.resolve_clock`.
    latency, jitter:
        Parameters of the ``"seeded"`` clock.
    clock_seed:
        Seed for simulated latency draws; ``None`` (default) inherits the
        trainer seed via :meth:`configure_environment`, which is what
        makes ledger replay re-derive identical traffic.
    """

    continuous = True

    def __init__(
        self,
        window: int = 0,
        discount: str = "poly",
        discount_power: float = 1.0,
        discount_factor: float = 0.5,
        capacity: int = 0,
        arrivals: str = "synchronized",
        latency: float = 1.0,
        jitter: float = 0.5,
        clock_seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if window < 0:
            raise ValueError(f"staleness window must be >= 0, got {window}")
        if discount not in DISCOUNTS:
            raise ValueError(
                f"unknown staleness discount {discount!r}; expected one of "
                f"{DISCOUNTS} — e.g. \"async:window=2,discount=poly\" or "
                '"async:window=2,discount=const,factor=0.5"'
            )
        if capacity < 0:
            raise ValueError(
                f"queue capacity must be >= 0 (0 = unbounded), got {capacity}"
            )
        self.window = int(window)
        self.discount = discount
        self.discount_power = float(discount_power)
        self.discount_factor = float(discount_factor)
        self.capacity = int(capacity)
        self.arrivals = arrivals
        self.latency = float(latency)
        self.jitter = float(jitter)
        self.clock_seed = clock_seed
        # Resolved against the trainer's environment in
        # configure_environment(); the "systems" clock needs the trainer's
        # systems model, so it starts as a placeholder, while the other
        # arrival names resolve eagerly (validating them at construction).
        if arrivals == "systems":
            self.clock: Clock = SynchronizedClock()
        else:
            self.clock = resolve_clock(
                arrivals, None, seed=clock_seed or 0, latency=latency,
                jitter=jitter,
            )
        self._environment_set = False
        self._queue: List[_QueuedCheckin] = []
        self._seq = 0
        self._round: Optional[int] = None

    # Engine identity ---------------------------------------------------- #
    def spec(self) -> str:
        from ..core.config import EngineConfig  # deferred: core imports runtime

        return EngineConfig(
            mode="async",
            window=self.window,
            discount=self.discount,
            discount_power=self.discount_power,
            discount_factor=self.discount_factor,
            capacity=self.capacity,
            arrivals=self.arrivals,
            latency=self.latency,
            jitter=self.jitter,
            clock_seed=self.clock_seed,
        ).spec()

    # Environment --------------------------------------------------------- #
    def configure_environment(
        self, systems=None, seed: int = 0, epochs: float = 0.0
    ) -> None:
        """Resolve the arrival clock against the run's environment.

        ``arrivals="systems"`` binds to the trainer's
        :class:`~repro.systems.clock.ClockDrivenSystems` device profiles
        (a labeled error without one); the seeded clock inherits the
        trainer seed unless an explicit ``clock_seed`` pins it.
        """
        seed_value = self.clock_seed if self.clock_seed is not None else int(seed)
        self.clock = resolve_clock(
            self.arrivals,
            systems,
            seed=seed_value,
            latency=self.latency,
            jitter=self.jitter,
        )
        self._environment_set = True

    def begin_round(self, round_idx: int) -> None:
        self._round = int(round_idx)

    @property
    def queue_depth(self) -> int:
        """Check-ins currently in flight (admitted, not yet delivered)."""
        return len(self._queue)

    # Staleness ----------------------------------------------------------- #
    def discount_weight(self, staleness: int) -> float:
        """Multiplicative aggregation discount for a given staleness."""
        if staleness <= 0:
            return 1.0
        if self.discount == "poly":
            return float((1.0 + staleness) ** (-self.discount_power))
        return self.discount_factor

    # Round work ---------------------------------------------------------- #
    def _current_round(self, tasks: Sequence[LocalTask]) -> int:
        # Tasks are authoritative (their entropy tuple encodes the round,
        # and standalone callers may never call begin_round); the trainer's
        # begin_round covers continuous dispatches with no tasks.
        if tasks:
            encoded = task_round(tasks[0])
            if encoded is not None:
                return encoded
        return self._round if self._round is not None else 0

    def run_local_solves(self, tasks: Sequence[LocalTask]) -> List["ClientUpdate"]:
        self._require_bound()
        round_idx = self._current_round(tasks)
        telemetry = self.telemetry

        # Admission: each selected device checks in; a bounded queue
        # rejects the overflow (backpressure — the device's work is lost,
        # exactly as if it had been dropped by the sampler).  Compression
        # shortens the simulated *upload* leg by the codec's exact
        # predicted wire ratio (the downlink stays dense — the server
        # broadcasts the uncompressed model), so smaller payloads arrive
        # earlier and shift the staleness distribution.  A ratio of
        # exactly 1.0 (identity codec, or comms disabled) leaves the
        # historical total untouched bit-for-bit.
        upload_ratio = 1.0
        if self._comms is not None and tasks:
            upload_ratio = self._comms.upload_ratio(tasks[0].w_global.shape[0])
        rejected = 0
        admitted = 0
        for task in tasks:
            if self.capacity > 0 and len(self._queue) >= self.capacity:
                rejected += 1
                continue
            if upload_ratio != 1.0:
                timing = self.clock.timing(
                    round_idx, task.client_id, task.epochs
                )
                duration = (
                    timing.download
                    + timing.compute
                    + timing.upload * upload_ratio
                )
            else:
                duration = self.clock.duration(
                    round_idx, task.client_id, task.epochs
                )
            period = self.clock.period or 1.0
            self._queue.append(
                _QueuedCheckin(
                    arrival=round_idx + duration / period,
                    seq=self._seq,
                    submit_round=round_idx,
                    task=task,
                )
            )
            self._seq += 1
            admitted += 1
        if self._comms is not None and admitted and tasks:
            # Downlink accounting happens at admission (every admitted
            # device received the model broadcast), not at delivery —
            # discarded entries still downloaded it.
            self._comms.record_dispatch(
                admitted, tasks[0].w_global.shape[0],
                telemetry=telemetry, round_idx=round_idx,
            )
        if rejected:
            telemetry.metric(
                "async.admission_reject", rejected, round_idx=round_idx,
                kind="counter",
            )

        # Delivery: drain every check-in arriving within this round, in
        # arrival order (admission order breaks ties, so synchronized
        # arrivals reduce to submission order).  Solves run lazily at
        # delivery; each update is a pure function of its task, so the
        # deferred execution cannot perturb results.
        due = sorted(
            (e for e in self._queue if e.arrival <= round_idx + 1),
            key=lambda e: (e.arrival, e.seq),
        )
        due_set = {e.seq for e in due}
        self._queue = [e for e in self._queue if e.seq not in due_set]
        updates: List["ClientUpdate"] = []
        staleness_values: List[float] = []
        with telemetry.span(
            "async:deliver", round_idx=round_idx,
            submitted=len(tasks), due=len(due), rejected=rejected,
        ):
            for entry in due:
                staleness = round_idx - entry.submit_round
                update = solve_with_timings(
                    self.clients[entry.task.client_id], entry.task
                )
                update.staleness = staleness
                update.discount = self.discount_weight(staleness)
                staleness_values.append(float(staleness))
                telemetry.record_span(
                    "async:checkin",
                    entry.arrival - entry.submit_round,
                    round_idx=round_idx,
                    clock="simulated",
                    unit="rounds",
                    client_id=entry.task.client_id,
                    staleness=staleness,
                )
                updates.append(update)
        # Comms finalize per delivered batch: decode device-side payloads
        # or round-trip dense updates (error feedback) against each
        # entry's *own* submit-round model — downlink was accounted at
        # admission, so finalize only counts the delivered uplinks.
        self._finalize_comms(
            updates, [entry.task for entry in due], count_dispatch=False
        )

        # Backpressure bookkeeping: discard entries that would exceed the
        # staleness window by the time the next round could deliver them.
        keep: List[_QueuedCheckin] = []
        discarded = 0
        for entry in self._queue:
            if (round_idx + 1) - entry.submit_round > self.window:
                discarded += 1
            else:
                keep.append(entry)
        self._queue = keep
        if discarded:
            telemetry.metric(
                "async.discard", discarded, round_idx=round_idx, kind="counter"
            )
        telemetry.metric(
            "async.queue_depth", len(self._queue), round_idx=round_idx
        )
        if staleness_values:
            telemetry.histogram(
                "async.staleness", staleness_values, round_idx=round_idx
            )
        return updates
