"""Vectorized federation-level evaluation fast paths.

Evaluating the global objective after every round is one of the two hot
paths of the server loop (the other being the local solves): the legacy
path walks every device in Python and runs one small forward pass per
device, which dominates wall-clock time on the paper's 1000-device
federations.  :class:`FederationEvaluator` provides two strategies:

``per_client``
    The legacy semantics — one forward per device, reduced with the
    aggregation masses ``p_k = n_k / n``.  Bit-identical to the historical
    :func:`repro.core.server.global_train_loss` /
    :func:`~repro.core.server.global_test_accuracy` results.

``stacked``
    Per-client batches are concatenated once (and cached) and the whole
    federation is evaluated in fused forward passes over large fixed-size
    blocks of the stack — big enough to amortize Python/NumPy dispatch,
    small enough that the softmax temporaries stay cache-resident (a
    single 178k-row forward is memory-bandwidth-bound and measurably
    slower).  Because every :class:`~repro.models.base.FederatedModel`
    defines ``loss`` as the *mean* per-sample loss, the sample-weighted
    block mean equals the ``n_k``-weighted mean of per-client losses up
    to floating-point association (the L2 constant enters exactly once
    since the block weights sum to 1), and the stacked accuracy count is
    exactly the per-client sum.  Only enabled for models advertising
    ``supports_stacked_eval``.

Both round executors share one evaluator instance (or, for worker-side
``per_client`` evaluation, share this module's reduction helpers), which is
what keeps serial and parallel training histories bit-identical.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from ..telemetry import resolve_telemetry

if TYPE_CHECKING:  # avoid a circular import with repro.core
    from ..core.client import Client
    from ..models.base import FederatedModel

EVAL_MODES = ("auto", "per_client", "stacked")

# Rows per fused forward pass in stacked mode.  2048 rows * 60 features of
# float64 keeps the design matrix slice plus the N x classes softmax
# temporaries inside L2 cache; larger blocks go memory-bandwidth-bound.
STACKED_EVAL_BLOCK = 2048


def resolve_eval_mode(
    model: "FederatedModel", eval_mode: str, lazy: bool = False
) -> str:
    """Resolve ``"auto"`` against the model's stacked-eval capability.

    ``"auto"`` picks ``"stacked"`` whenever the model supports it and falls
    back to ``"per_client"`` otherwise; explicitly requesting ``"stacked"``
    on a model without support is an error rather than a silent fallback.

    ``lazy=True`` (a lazily-materializing client store backs the
    federation) steers ``"auto"`` to ``"per_client"``: the stacked path
    caches a concatenation of *every* client's arrays, which defeats the
    store's O(active cohort) memory bound.  Explicitly requesting
    ``"stacked"`` on a lazy store is still honored — small mmap-backed
    federations may legitimately want it — it simply materializes the
    federation once.
    """
    if eval_mode not in EVAL_MODES:
        raise ValueError(
            f"eval_mode must be one of {EVAL_MODES}, got {eval_mode!r}"
        )
    supported = bool(getattr(model, "supports_stacked_eval", False))
    if eval_mode == "auto":
        return "stacked" if (supported and not lazy) else "per_client"
    if eval_mode == "stacked" and not supported:
        raise ValueError(
            f"{type(model).__name__} does not support stacked evaluation; "
            "use eval_mode='per_client' or 'auto'"
        )
    return eval_mode


def no_test_samples_error(label: str = "") -> ValueError:
    """The federation-wide 'nothing to test on' error, naming the federation."""
    where = f"federation {label!r}" if label else "the federation"
    return ValueError(f"no test samples anywhere in {where}")


class FederationEvaluator:
    """Global train-loss / test-accuracy oracle over a fixed client list.

    Parameters
    ----------
    clients:
        The federation's clients, in device-id order.  The client list (and
        each client's data) must not change after construction — the
        stacked fast path caches concatenated arrays.
    model:
        Model used for the evaluation forward passes (typically the
        trainer's shared model).
    eval_mode:
        ``"per_client"`` or ``"stacked"`` (resolve ``"auto"`` first via
        :func:`resolve_eval_mode`).
    label:
        Federation display name, used in the no-test-samples error.
    block_size:
        Rows per fused forward pass in stacked mode.  ``None`` (default)
        resolves to the model's ``stacked_eval_block_rows`` hint when it
        provides one (sequence models ask for smaller blocks — their
        forward temporaries scale with ``time x hidden`` per row) and to
        :data:`STACKED_EVAL_BLOCK` otherwise.
    telemetry:
        When enabled, each oracle call emits an ``eval:train_loss`` /
        ``eval:test_accuracy`` span with the evaluation mode and row
        count; defaults to the shared no-op telemetry.
    """

    def __init__(
        self,
        clients: Sequence["Client"],
        model: "FederatedModel",
        eval_mode: str = "per_client",
        label: str = "",
        block_size: Optional[int] = None,
        telemetry=None,
    ) -> None:
        if eval_mode not in ("per_client", "stacked"):
            raise ValueError(
                f"eval_mode must be 'per_client' or 'stacked', got {eval_mode!r}"
            )
        if block_size is None:
            block_size = (
                getattr(model, "stacked_eval_block_rows", None) or STACKED_EVAL_BLOCK
            )
        if block_size < 1:
            raise ValueError("block_size must be positive")
        # A lazily-backed client pool is kept as-is (copying into a list
        # would pin transient Client wrappers, and iterating it must stay
        # streaming); plain client sequences are copied as before.
        self.clients = (
            clients if getattr(clients, "lazy", False) else list(clients)
        )
        self.model = model
        self.eval_mode = eval_mode
        self.label = label
        self.block_size = block_size
        self.telemetry = resolve_telemetry(telemetry)
        # Aggregation masses come from store metadata when the client
        # sequence exposes it (ClientPool) — same integers, same float64
        # ops, so results are bit-identical to the per-client loop — and
        # never materialize a lazily-stored client.
        train_sizes = getattr(clients, "train_sizes", None)
        if train_sizes is not None:
            masses = np.asarray(train_sizes, dtype=np.float64)
            test_rows = int(np.asarray(clients.test_sizes).sum())
        else:
            masses = np.array(
                [c.data.num_train for c in self.clients], dtype=np.float64
            )
            test_rows = int(sum(c.data.num_test for c in self.clients))
        self._masses = masses / masses.sum()
        self._train_rows = int(masses.sum())
        self._test_rows = test_rows
        self._train_stack: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._test_stack: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # Reductions (shared with worker-side per-client evaluation) --------- #
    def reduce_train_losses(self, losses: np.ndarray) -> float:
        """Combine per-client losses into the global objective ``f(w)``."""
        return float(self._masses @ np.asarray(losses, dtype=np.float64))

    def reduce_test_counts(self, correct: int, total: int) -> float:
        """Combine correct/total counts into the global test accuracy."""
        if total == 0:
            raise no_test_samples_error(self.label)
        return correct / total

    # Stacked caches ----------------------------------------------------- #
    def _train_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._train_stack is None:
            self._train_stack = (
                np.concatenate([c.data.train_x for c in self.clients]),
                np.concatenate([c.data.train_y for c in self.clients]),
            )
        return self._train_stack

    def _test_arrays(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        if self._test_stack is None:
            xs = [c.data.test_x for c in self.clients if c.data.num_test > 0]
            ys = [c.data.test_y for c in self.clients if c.data.num_test > 0]
            if not xs:
                raise no_test_samples_error(self.label)
            self._test_stack = (np.concatenate(xs), np.concatenate(ys))
        return self._test_stack

    def _blocks(self, n: int):
        for lo in range(0, n, self.block_size):
            yield lo, min(lo + self.block_size, n)

    # Public oracle ------------------------------------------------------ #
    def train_loss(self, w: np.ndarray) -> float:
        """Global objective ``f(w) = sum_k p_k F_k(w)`` of Equation 1."""
        if not self.telemetry.enabled:
            return self._train_loss(w)
        t0 = time.perf_counter()
        result = self._train_loss(w)
        self.telemetry.record_span(
            "eval:train_loss", time.perf_counter() - t0,
            mode=self.eval_mode, rows=self._train_rows,
        )
        return result

    def _train_loss(self, w: np.ndarray) -> float:
        if self.eval_mode == "stacked":
            X, y = self._train_arrays()
            self.model.set_params(w)
            total = 0.0
            for lo, hi in self._blocks(len(y)):
                total += float(self.model.loss(X[lo:hi], y[lo:hi])) * (hi - lo)
            return total / len(y)
        losses = np.array([c.train_loss(w) for c in self.clients])
        return self.reduce_train_losses(losses)

    def test_accuracy(self, w: np.ndarray) -> float:
        """Sample-weighted test accuracy across all devices with test data."""
        if not self.telemetry.enabled:
            return self._test_accuracy(w)
        t0 = time.perf_counter()
        result = self._test_accuracy(w)
        self.telemetry.record_span(
            "eval:test_accuracy", time.perf_counter() - t0,
            mode=self.eval_mode, rows=self._test_rows,
        )
        return result

    def _test_accuracy(self, w: np.ndarray) -> float:
        if self.eval_mode == "stacked":
            X, y = self._test_arrays()
            self.model.set_params(w)
            correct = 0
            for lo, hi in self._blocks(len(y)):
                correct += int(
                    np.sum(self.model.predict(X[lo:hi]) == y[lo:hi])
                )
            return self.reduce_test_counts(correct, len(y))
        correct = 0
        total = 0
        for client in self.clients:
            if client.data.num_test == 0:
                continue
            c, n = client.test_metrics(w)
            correct += c
            total += n
        return self.reduce_test_counts(correct, total)
