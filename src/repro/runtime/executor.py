"""Pluggable round execution: how one round's local solves actually run.

The server loop (:class:`repro.core.server.FederatedTrainer`) describes
*what* happens each round — which devices are selected, which straggle, how
updates aggregate.  A :class:`RoundExecutor` decides *how* the resulting
batch of independent local solves is executed: in-process and sequential
(:class:`SerialExecutor`, the default) or fanned out across persistent
worker processes (:class:`~repro.runtime.parallel.ParallelExecutor`).

Determinism contract
--------------------
A :class:`LocalTask` carries everything a solve depends on — the global
model, the proximal coefficient, the work budget, and the *entropy tuple*
``(seed, round, client, occurrence)`` from which the mini-batch generator
is derived.  Executors must run each task as a pure function of its task
description, so any two executors produce bit-identical
:class:`~repro.core.client.ClientUpdate` lists for the same task list,
regardless of worker count or scheduling order.  Results are always
returned in task order.

Evaluation is dispatched through the executor as well (``train_loss`` /
``test_accuracy``); both built-in executors reduce per-client metrics in
device order with shared reduction code, so evaluation is also bit-stable
across executors.

Telemetry
---------
:meth:`RoundExecutor.bind` accepts a telemetry object (default: the shared
:data:`~repro.telemetry.NULL_TELEMETRY` no-op).  When a
:class:`~repro.runtime.executor.LocalTask` asks for timing collection
(``collect_timings=True``, set by the trainer whenever telemetry is
enabled), executors attach wall-clock phase payloads to each
:class:`~repro.core.client.ClientUpdate` (``update.timings``) — plain
floats that survive pickling, so :class:`~repro.runtime.parallel.ParallelExecutor`
worker spans cross the process boundary and are re-emitted server-side.
Timings never influence the solve itself, so histories stay bit-identical
whether telemetry is on or off.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from ..faults.models import FaultDecision
from ..telemetry import NULL_TELEMETRY, resolve_telemetry
from .evaluation import FederationEvaluator, resolve_eval_mode

if TYPE_CHECKING:  # avoid a circular import with repro.core
    from ..core.client import Client, ClientUpdate
    from ..datasets.federated import FederatedDataset
    from ..models.base import FederatedModel
    from ..optim.base import LocalSolver

# Entropy salt deriving a corruption noise stream from a task's entropy
# tuple — disjoint from the mini-batch stream so injecting a corruption
# fault never perturbs the batch order of the solve it corrupts.
_CORRUPTION_SALT = 0xC0FF


@dataclass(frozen=True)
class LocalTask:
    """A self-contained description of one device's local solve.

    Attributes
    ----------
    client_id:
        Device to run (also its index in the federation's client list).
    w_global:
        Round-start global model ``w_t``.
    mu:
        Proximal coefficient of the local subproblem.
    epochs:
        Work budget from the systems model (fractional for stragglers).
    rng_entropy:
        Integer entropy ``(seed, round, client, occurrence)`` from which
        the mini-batch :class:`numpy.random.Generator` is derived — shipped
        instead of a generator so workers rebuild identical randomness.
    measure_gamma:
        Also measure the solve's γ-inexactness (Definition 2).
    correction:
        Optional FedDane linear correction vector.
    collect_timings:
        Attach wall-clock timing payloads to the resulting
        :class:`~repro.core.client.ClientUpdate` (set by the trainer when
        telemetry is enabled; off by default so the disabled path does no
        extra work).
    fault:
        Injected fault striking this solve (see :mod:`repro.faults`), or
        ``None`` for a healthy device.  Faults are part of the task
        description, so their effects — a crash's truncated budget, a
        corruption's noise stream — are pure functions of the task and
        identical on every executor.
    codec:
        Update codec (:class:`~repro.comms.codecs.Codec`) for the
        device-side encode fast path: when set, the solve's result ships
        back as an encoded :class:`~repro.comms.codecs.WirePayload`
        (``update.payload``) instead of a dense array, and the server
        decodes at finalize.  ``None`` (default, and always under error
        feedback) ships the dense iterate.  Encoding randomness derives
        from ``rng_entropy`` plus the comms salt, so payloads are
        bit-identical on every executor.
    """

    client_id: int
    w_global: np.ndarray
    mu: float
    epochs: float
    rng_entropy: Tuple[int, ...]
    measure_gamma: bool = False
    correction: Optional[np.ndarray] = None
    collect_timings: bool = False
    fault: Optional[FaultDecision] = None
    codec: Optional[object] = None


def task_rng(task: LocalTask) -> np.random.Generator:
    """The task's mini-batch generator, identical in any process."""
    return np.random.default_rng(np.random.SeedSequence(list(task.rng_entropy)))


def task_round(task: LocalTask) -> Optional[int]:
    """The round index encoded in the task's entropy tuple, if present."""
    return int(task.rng_entropy[1]) if len(task.rng_entropy) >= 2 else None


def task_effective_epochs(task: LocalTask) -> float:
    """The work budget actually executed, after any injected crash.

    A crash fault truncates the *executed* budget to the drawn fraction of
    the intended epochs — the device checkpointed that much work before
    failing.  All executors derive the budget through this helper, so a
    crashed solve performs identical work (and consumes identical batch
    entropy) everywhere.
    """
    if task.fault is not None and task.fault.kind == "crash":
        return task.epochs * task.fault.fraction
    return task.epochs


def apply_update_fault(update: "ClientUpdate", task: LocalTask) -> "ClientUpdate":
    """Stamp the task's fault onto its update and apply corruption.

    Runs where the solve ran (serial in-process, inside a parallel worker,
    or in the cohort finalize loop).  Corruption noise derives from the
    task's entropy tuple plus a dedicated salt, so the damage is
    bit-identical on every executor and across process boundaries.
    """
    fault = task.fault
    if fault is None:
        return update
    update.fault = fault
    if fault.kind == "corrupt":
        rng = np.random.default_rng(
            np.random.SeedSequence(list(task.rng_entropy) + [_CORRUPTION_SALT])
        )
        w = update.w
        if fault.mode == "nan":
            # Poison ~10% of coordinates (at least one) with NaNs: loud,
            # detectable damage the quarantine guard is meant to catch.
            k = max(1, w.size // 10)
            w[rng.choice(w.size, size=k, replace=False)] = np.nan
        else:  # "noise": silent damage at `scale` times the update's RMS
            rms = float(np.sqrt(np.mean(w * w)))
            w += fault.scale * (rms or 1.0) * rng.standard_normal(w.size)
    return update


def solve_with_timings(client: "Client", task: LocalTask) -> "ClientUpdate":
    """Run one task on a client, honoring its timing and fault fields.

    The shared solve path for :class:`SerialExecutor` and the parallel
    workers: when ``task.collect_timings`` is set, the update's
    ``timings`` dict records the solve's wall-clock duration (pure
    floats, so the payload pickles across the process boundary).  Injected
    faults are honored here too — crashes truncate the executed budget,
    corruption damages the delivered iterate — so the parallel workers
    reproduce fault effects without server-side post-processing.
    """
    t0 = time.perf_counter() if task.collect_timings else 0.0
    update = client.local_solve(
        w_global=task.w_global,
        mu=task.mu,
        epochs=task_effective_epochs(task),
        rng=task_rng(task),
        correction=task.correction,
        measure_gamma=task.measure_gamma,
    )
    apply_update_fault(update, task)
    if task.collect_timings:
        update.timings = {"solve": time.perf_counter() - t0}
    if task.codec is not None:
        # Device-side encode: the iterate ships back as one contiguous
        # wire buffer.  Runs after the fault stamp so corruption damage is
        # part of what gets encoded, exactly as on a real device.
        t1 = time.perf_counter() if task.collect_timings else 0.0
        update.payload = task.codec.encode_update(
            update.w, task.w_global, task.rng_entropy
        )
        update.w = None
        if task.collect_timings:
            update.timings["comm_encode"] = time.perf_counter() - t1
            update.timings["payload_bytes"] = float(update.payload.nbytes)
    return update


class RoundExecutor(abc.ABC):
    """Executes batches of local solves and federation-level evaluation.

    Lifecycle: the trainer calls :meth:`bind` once with the federation,
    shared model, and solver, then :meth:`configure_environment` with the
    run's systems model and seed; afterwards :meth:`begin_round`,
    :meth:`run_local_solves`, :meth:`train_loss` and :meth:`test_accuracy`
    may be called every round.  Executors owning external resources release
    them in :meth:`close` (also invoked by the context-manager protocol).
    """

    #: Continuous engines (``AsyncExecutor``) carry undelivered work across
    #: rounds, so the trainer dispatches to them even on rounds where every
    #: selected device was dropped or crashed — a synchronous executor with
    #: no tasks has nothing to do.
    continuous: bool = False

    #: Update-compression manager shared by the trainer (class default so
    #: subclasses that skip ``super().__init__()`` still read ``None``).
    _comms = None

    def __init__(self) -> None:
        self.dataset: Optional["FederatedDataset"] = None
        self.model: Optional["FederatedModel"] = None
        self.solver: Optional["LocalSolver"] = None
        self.clients: List["Client"] = []
        self.eval_mode: str = "per_client"
        self.evaluator: Optional[FederationEvaluator] = None
        self.telemetry = NULL_TELEMETRY
        self._comms = None

    # Lifecycle ---------------------------------------------------------- #
    def bind(
        self,
        dataset: "FederatedDataset",
        model: "FederatedModel",
        solver: "LocalSolver",
        clients: Optional[Sequence["Client"]] = None,
        eval_mode: str = "auto",
        label: str = "",
        telemetry=None,
    ) -> None:
        """Attach the executor to a federation.

        Parameters
        ----------
        dataset, model, solver:
            The federation's data, shared model oracle, and local solver.
        clients:
            Prebuilt client list to share with the caller; built from the
            dataset when omitted.
        eval_mode:
            Evaluation strategy (see :mod:`repro.runtime.evaluation`);
            ``"auto"`` resolves against the model's capability.
        label:
            Federation display name for error messages.
        telemetry:
            Instrumentation for executor-internal spans (cohort phase
            splits, evaluator oracle calls); defaults to the shared
            no-op :data:`~repro.telemetry.NULL_TELEMETRY`.
        """
        from ..core.client import ClientPool  # deferred: core imports runtime

        self.dataset = dataset
        self.model = model
        self.solver = solver
        self.telemetry = resolve_telemetry(telemetry)
        # Client access always resolves through the dataset's store: a
        # ClientPool passes through untouched (it already routes through
        # the store's cache), a prebuilt plain sequence is copied as
        # before, and with nothing given we build the pool ourselves —
        # eager datasets get the historical prebuilt list, lazy stores get
        # transient per-access clients.
        if clients is None:
            self.clients = ClientPool(dataset, model, solver)
        elif isinstance(clients, ClientPool):
            self.clients = clients
        else:
            self.clients = list(clients)
        self.eval_mode = resolve_eval_mode(
            model, eval_mode, lazy=bool(getattr(dataset, "is_lazy", False))
        )
        self.evaluator = FederationEvaluator(
            self.clients,
            model,
            eval_mode=self.eval_mode,
            label=label,
            telemetry=self.telemetry,
        )
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclasses needing extra setup after :meth:`bind`."""

    def configure_environment(
        self, systems=None, seed: int = 0, epochs: float = 0.0
    ) -> None:
        """Receive the run's simulated environment (systems model, seed).

        Called by the trainer once after :meth:`bind`.  Synchronous
        executors ignore it; the async engine resolves its arrival clock
        here (the systems model's device profiles can drive check-in
        times, and the trainer seed keeps simulated latency reproducible).
        """

    def begin_round(self, round_idx: int) -> None:
        """Note that round ``round_idx`` is starting (hook; no-op here).

        Lets continuous engines advance their simulated clock even on
        rounds that contribute no new tasks (mass churn, total crash).
        """

    def configure_comms(self, comms) -> None:
        """Receive the trainer's update-compression manager (or ``None``).

        Called by the trainer once after :meth:`configure_environment`.
        Executors funnel every finished batch through the manager's
        payload round-trip (:meth:`_finalize_comms`) before returning
        from :meth:`run_local_solves`, so downstream consumers — the
        fault manager's finiteness quarantine first among them — only
        ever see decoded dense updates.
        """
        self._comms = comms

    def _finalize_comms(
        self, updates: List["ClientUpdate"], tasks: Sequence[LocalTask],
        count_dispatch: bool = True,
    ) -> List["ClientUpdate"]:
        """Round-trip a finished batch through the comms manager, if any."""
        if self._comms is not None:
            self._comms.finalize_round(
                updates, tasks, telemetry=self.telemetry,
                count_dispatch=count_dispatch,
            )
        return updates

    def spec(self) -> str:
        """The executor spec string reconstructing this executor.

        The inverse of :func:`repro.runtime.make_executor` — what the run
        ledger serializes so replay rebuilds an identically-parameterized
        engine.
        """
        name = type(self).__name__
        if name.endswith("Executor"):
            name = name[: -len("Executor")]
        return name.lower()

    def ensure_started(self) -> None:
        """Eagerly acquire any lazy resources (worker pools); idempotent."""

    def close(self) -> None:
        """Release executor-owned resources; the executor stays bound."""

    def __enter__(self) -> "RoundExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def n_workers(self) -> int:
        """Degree of parallelism (1 for in-process execution)."""
        return 1

    def _require_bound(self) -> None:
        if self.evaluator is None:
            raise RuntimeError(
                f"{type(self).__name__} is not bound; call bind() first "
                "(FederatedTrainer does this automatically)"
            )

    # Round work --------------------------------------------------------- #
    @abc.abstractmethod
    def run_local_solves(self, tasks: Sequence[LocalTask]) -> List["ClientUpdate"]:
        """Execute every task and return the updates in task order."""

    def train_loss(self, w: np.ndarray) -> float:
        """Global objective ``f(w)`` over the bound federation."""
        self._require_bound()
        return self.evaluator.train_loss(w)

    def test_accuracy(self, w: np.ndarray) -> float:
        """Sample-weighted global test accuracy over the bound federation."""
        self._require_bound()
        return self.evaluator.test_accuracy(w)


class SerialExecutor(RoundExecutor):
    """In-process sequential execution — the historical trainer behavior.

    Local solves run one after another against the trainer's shared model;
    evaluation delegates to the bound :class:`FederationEvaluator` (which
    still benefits from the stacked fast path when the model supports it).
    """

    def run_local_solves(self, tasks: Sequence[LocalTask]) -> List["ClientUpdate"]:
        self._require_bound()
        updates = [
            solve_with_timings(self.clients[task.client_id], task)
            for task in tasks
        ]
        return self._finalize_comms(updates, tasks)
