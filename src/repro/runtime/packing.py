"""Skew-aware cohort packing: lane assignment for stacked local solves.

The original cohort scheduler stacked one client per row and sorted rows by
descending batch budget, so stragglers fell off a shrinking *prefix*.  That
layout is ideal for balanced cohorts but collapses under the paper's
power-law device heterogeneity: one dominant client with budget
``t_max = max_k T_k`` forces a ``(t_max, K, b_max)`` schedule tensor whose
later steps are almost entirely padding, and the stacked buffers stay
K-wide even when the mean active width ``sum_k T_k / t_max`` is close to 1.

Two facts bound what any scheduler can do for a single cohort:

* Each client's chain of local steps is strictly sequential (step ``s+1``
  starts from the iterate step ``s`` produced), so ``t_max`` kernel calls
  is a hard floor — no interleaving shortens the dominant chain.
* Total row-work ``sum_k T_k`` is schedule-invariant.

What *is* schedulable is the buffer width: this module bin-packs the K
chains into ``L <= K`` **lanes** of capacity ``t_max`` (first-fit
decreasing), running multiple short chains back-to-back in one lane.  The
kernel then operates on ``(t_max, L, b_max)`` tensors and an ``(L, d)``
weight stack — under heavy skew ``L`` approaches ``ceil(sum T_k / t_max)``,
the information-theoretic minimum, shrinking the gather plan, the packed
schedule tensors, and every per-step kernel's width.

Lanes are ordered by descending total load, so the busy lane set at any
step is a *prefix* — the kernel loop keeps the zero-copy ``W[:A]`` slicing
of the original design.  Time decomposes into **segments** between chain
start/end boundaries: within a segment the active width is constant and
each active lane advances one fixed chain, so per-step work is one stacked
gradient + one solver step, with per-row local step indices supplied to
step-dependent solvers (Adam) when lanes sit at different chain offsets.

``pack_efficiency`` is the achieved-versus-ideal width ratio
``sum_k T_k / (t_max * L)``: the mean kernel width actually used divided
by the lane width allocated.  The legacy one-client-per-row layout scores
``sum_k T_k / (t_max * K)``; FFD packing pushes the gauge toward 1.0 under
skew and degenerates *exactly* to the legacy prefix schedule for balanced
cohorts (every chain fills a fresh lane, stable sort preserves order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Placement:
    """One client chain's slot in the packed schedule.

    ``task`` indexes the cohort's task list; the chain occupies global
    steps ``[start, stop)`` of lane ``lane`` (``stop - start`` equals the
    chain's batch budget).
    """

    task: int
    lane: int
    start: int
    stop: int


@dataclass(frozen=True)
class Segment:
    """A maximal run of global steps with a constant busy-lane prefix.

    Attributes
    ----------
    lo, hi:
        Global step range ``[lo, hi)``.
    width:
        Number of busy lanes — always the prefix ``lanes[0:width]``.
    base_steps:
        ``(width,)`` int64: each active lane's 1-based *local* chain step
        at global step ``lo`` (local step at ``lo + s`` is
        ``base_steps + s``).
    uniform:
        True when every active lane sits at the same local offset, letting
        the kernel pass a plain ``int`` step to the solver (the exact
        scalar-compatible code path).
    starts:
        Placements whose chain begins at ``lo`` (lane initialization —
        load the task's ``w_t``, µ, correction; reset solver state).
    ends:
        Placements whose chain finishes at ``hi`` (copy the lane's row out
        as that task's local iterate).
    """

    lo: int
    hi: int
    width: int
    base_steps: np.ndarray
    uniform: bool
    starts: Tuple[Placement, ...]
    ends: Tuple[Placement, ...]


@dataclass(frozen=True)
class CohortPlan:
    """Full packed schedule for one cohort solve."""

    budgets: Tuple[int, ...]
    t_max: int
    n_lanes: int
    lane_loads: Tuple[int, ...]
    placements: Tuple[Placement, ...]
    segments: Tuple[Segment, ...]
    pack_efficiency: float

    @property
    def ideal_width(self) -> float:
        """Mean busy width ``sum(T_k) / t_max`` — the packing lower bound."""
        return sum(self.budgets) / self.t_max


def plan_cohort(budgets: Sequence[int]) -> CohortPlan:
    """Pack client chains into lanes and segment the step axis.

    Deterministic: first-fit decreasing over chains sorted by descending
    budget (stable — ties keep task order), lanes scanned in creation
    order, then reordered by descending total load (stable).  For balanced
    budgets every chain opens its own lane and the plan reproduces the
    legacy budget-sorted shrinking-prefix schedule exactly.
    """
    K = len(budgets)
    if K == 0:
        raise ValueError("cannot plan an empty cohort")
    budgets = tuple(int(b) for b in budgets)
    if any(b <= 0 for b in budgets):
        raise ValueError("every chain budget must be positive")
    t_max = max(budgets)

    # First-fit decreasing with capacity t_max.  The longest chain fills
    # lane 0 exactly; each later chain lands in the first lane with room.
    order = sorted(range(K), key=lambda i: -budgets[i])
    lane_loads: List[int] = []
    lane_chains: List[List[int]] = []
    for i in order:
        b = budgets[i]
        for lane, load in enumerate(lane_loads):
            if load + b <= t_max:
                lane_chains[lane].append(i)
                lane_loads[lane] += b
                break
        else:
            lane_chains.append([i])
            lane_loads.append(b)

    # Busy-prefix invariant: order lanes by descending load (stable), so
    # lane l is busy at step t iff load_l > t iff l < width(t).
    lane_order = sorted(
        range(len(lane_loads)), key=lambda l: -lane_loads[l]
    )
    lane_loads = [lane_loads[l] for l in lane_order]
    lane_chains = [lane_chains[l] for l in lane_order]
    n_lanes = len(lane_loads)

    placements: List[Placement] = []
    for lane, chains in enumerate(lane_chains):
        start = 0
        for i in chains:
            stop = start + budgets[i]
            placements.append(Placement(task=i, lane=lane, start=start, stop=stop))
            start = stop
    placements.sort(key=lambda p: (p.lane, p.start))

    # Segment boundaries: every chain start/stop (all stops <= t_max).
    bounds = sorted({0, t_max} | {p.start for p in placements}
                    | {p.stop for p in placements})
    # Active placement per (lane, step) resolves by scanning each lane's
    # placements in order; per-lane pointers avoid quadratic rescans.
    by_lane: List[List[Placement]] = [[] for _ in range(n_lanes)]
    for p in placements:
        by_lane[p.lane].append(p)
    cursor = [0] * n_lanes

    segments: List[Segment] = []
    for lo, hi in zip(bounds, bounds[1:]):
        width = sum(1 for load in lane_loads if load > lo)
        base = np.empty(width, dtype=np.int64)
        starts: List[Placement] = []
        ends: List[Placement] = []
        for lane in range(width):
            chain = by_lane[lane]
            while chain[cursor[lane]].stop <= lo:
                cursor[lane] += 1
            p = chain[cursor[lane]]
            base[lane] = lo - p.start + 1
            if p.start == lo:
                starts.append(p)
            if p.stop == hi:
                ends.append(p)
        uniform = bool(width) and bool(np.all(base == base[0]))
        segments.append(
            Segment(
                lo=lo,
                hi=hi,
                width=width,
                base_steps=base,
                uniform=uniform,
                starts=tuple(starts),
                ends=tuple(ends),
            )
        )

    total = sum(budgets)
    return CohortPlan(
        budgets=budgets,
        t_max=t_max,
        n_lanes=n_lanes,
        lane_loads=tuple(lane_loads),
        placements=tuple(placements),
        segments=tuple(segments),
        pack_efficiency=total / (t_max * n_lanes),
    )
