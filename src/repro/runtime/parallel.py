"""Multiprocess round execution over persistent workers.

:class:`ParallelExecutor` ships each round's :class:`~repro.runtime.executor.LocalTask`
batch to a pool of persistent worker processes.  Workers are initialized
*once* with the whole federation — each worker holds its own model replica
(obtained from :meth:`~repro.models.base.FederatedModel.spawn_replica`),
the local solver, and its own view of every device's data shard — so per
round only the small task tuples (global model vector, coefficients, seed
entropy) cross the process boundary.  Datasets are never re-pickled per
round.

Determinism: a task is a pure function of its description (the mini-batch
generator is rebuilt in the worker from the task's entropy tuple), task
results are returned in task order, and evaluation reduces per-client
metrics in device order with the same reduction code as the serial path —
so training histories are bit-identical to :class:`SerialExecutor`
regardless of worker count.

Fault injection rides the same mechanism: an injected
:class:`~repro.faults.models.FaultDecision` is part of the
:class:`~repro.runtime.executor.LocalTask` that crosses the process
boundary, and the worker applies its effects (crash budget truncation,
corruption noise) through the shared
:func:`~repro.runtime.executor.solve_with_timings` path — so fault
outcomes are bit-identical to in-process execution.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import warnings
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from .executor import LocalTask, RoundExecutor, solve_with_timings

if TYPE_CHECKING:  # avoid a circular import with repro.core
    from ..core.client import ClientUpdate


# Per-worker-process state, populated once by _init_worker.
_WORKER: dict = {}

# One-time oversubscription warning (per process); see _warn_oversubscribed.
_OVERSUBSCRIPTION_WARNED = False


def _warn_oversubscribed(requested: int, available: int) -> None:
    """Warn once when more workers are requested than cores exist.

    Multiprocess execution is IPC-overhead-bound when oversubscribed — the
    committed ``BENCH_runtime.json`` records parallel at 0.72x serial on a
    1-core container — so flag the configuration instead of silently
    running slower than serial.
    """
    global _OVERSUBSCRIPTION_WARNED
    if _OVERSUBSCRIPTION_WARNED:
        return
    _OVERSUBSCRIPTION_WARNED = True
    warnings.warn(
        f"ParallelExecutor: {requested} workers requested but only "
        f"{available} CPU core(s) are available; oversubscribed "
        "multiprocess execution is typically slower than SerialExecutor. "
        "Use n_workers='auto' to match the host core count.",
        RuntimeWarning,
        stacklevel=3,
    )


def _init_worker(dataset, model, solver) -> None:
    """Build this worker's client pool (runs once per worker process).

    The pool resolves client access through the dataset's store: eager
    datasets prebuild the full client list exactly as before, while
    lazily-materializing stores (mmap shards reopen their files here,
    on-demand synthetic stores rebuild only their metadata) materialize
    clients per access — so workers inherit the store's O(active cohort)
    memory bound instead of each holding a full federation copy.
    """
    from ..core.client import ClientPool

    _WORKER["clients"] = ClientPool(dataset, model, solver)


def _solve_task(task: LocalTask) -> "ClientUpdate":
    """Run one local solve inside a worker process.

    Timing payloads (when the task asks for them) are measured *here*, on
    the worker's own clock, and ride back on the update as plain floats —
    the server re-emits them as ``solve:client`` spans, which is how
    parallel-executor spans survive the process boundary.
    """
    client = _WORKER["clients"][task.client_id]
    update = solve_with_timings(client, task)
    if update.w is not None:
        # Payload audit: the iterate crosses the process boundary as one
        # contiguous float64 buffer (ndarray pickling copies exactly
        # once); solver outputs already satisfy this, so the call is a
        # no-op in practice.  Under a device-side codec ``w`` is None and
        # the encoded payload's bytes buffer is the only array traffic.
        update.w = np.ascontiguousarray(update.w)
    if update.timings is not None:
        update.timings["worker_pid"] = float(os.getpid())
    return update


def _eval_chunk(args: Tuple) -> Tuple[Optional[List[float]], int, int]:
    """Evaluate a contiguous slice of clients inside a worker process.

    Returns ``(per_client_losses or None, correct, total)`` for clients
    ``[lo, hi)``; zero-test clients are skipped in the counts.
    """
    w, lo, hi, need_train, need_test = args
    clients = _WORKER["clients"][lo:hi]
    losses = [c.train_loss(w) for c in clients] if need_train else None
    correct = 0
    total = 0
    if need_test:
        for client in clients:
            if client.data.num_test == 0:
                continue
            c, n = client.test_metrics(w)
            correct += c
            total += n
    return losses, correct, total


class ParallelExecutor(RoundExecutor):
    """Round execution over a pool of persistent worker processes.

    Parameters
    ----------
    n_workers:
        Worker process count; defaults to ``os.cpu_count()``.  Pass
        ``"auto"`` for the same heuristic made explicit — the worker count
        is capped at ``os.cpu_count()`` so the pool never oversubscribes.
        Requesting more workers than available cores emits a one-time
        ``RuntimeWarning`` (oversubscribed pools are overhead-bound).
    start_method:
        Multiprocessing start method (``"fork"`` where available, else
        ``"spawn"``).  Results are identical either way; ``"fork"`` starts
        faster and shares the federation's memory copy-on-write.
    chunksize:
        Tasks handed to a worker per dispatch; 1 (the default) gives the
        best load balance for the paper's ``K = 10`` selections.

    The pool starts lazily on first use (or via :meth:`ensure_started`) and
    is shut down by :meth:`close`.  Binding a model without a
    :meth:`~repro.models.base.FederatedModel.spawn_replica` implementation
    raises ``TypeError`` immediately — parallel execution never silently
    degrades to serial.
    """

    def __init__(
        self,
        n_workers: Optional[Union[int, str]] = None,
        start_method: Optional[str] = None,
        chunksize: int = 1,
    ) -> None:
        super().__init__()
        available = os.cpu_count() or 1
        if n_workers is None or n_workers == "auto":
            resolved = available
        elif isinstance(n_workers, str):
            raise ValueError(
                f"n_workers must be an int or 'auto', got {n_workers!r}"
            )
        else:
            resolved = int(n_workers)
            if resolved > available:
                _warn_oversubscribed(resolved, available)
        if resolved < 1:
            raise ValueError("n_workers must be at least 1")
        if chunksize < 1:
            raise ValueError("chunksize must be at least 1")
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        if start_method not in mp.get_all_start_methods():
            raise ValueError(f"unknown start method {start_method!r}")
        self._n_workers = resolved
        self.start_method = start_method
        self.chunksize = int(chunksize)
        self._replica = None
        self._pool: Optional[_ProcessPool] = None

    @property
    def n_workers(self) -> int:
        return self._n_workers

    def spec(self) -> str:
        return f"parallel:{self._n_workers}"

    # Lifecycle ---------------------------------------------------------- #
    def _on_bind(self) -> None:
        try:
            self._replica = self.model.spawn_replica()
        except NotImplementedError as exc:
            raise TypeError(
                f"ParallelExecutor requires a model implementing "
                f"spawn_replica(); {type(self.model).__name__} does not. "
                "Implement the replica protocol or use SerialExecutor — "
                "parallel execution will not silently fall back to serial."
            ) from exc
        if self._pool is not None:  # re-bound to a new federation
            self.close()

    def ensure_started(self) -> None:
        self._require_bound()
        if self._pool is None:
            self._pool = _ProcessPool(
                max_workers=self._n_workers,
                mp_context=mp.get_context(self.start_method),
                initializer=_init_worker,
                initargs=(self.dataset, self._replica, self.solver),
            )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # Round work --------------------------------------------------------- #
    def run_local_solves(self, tasks: Sequence[LocalTask]) -> List["ClientUpdate"]:
        if not tasks:
            return []
        self.ensure_started()
        updates = list(
            self._pool.map(_solve_task, list(tasks), chunksize=self.chunksize)
        )
        # Server-side comms finalize: decode device-side payloads (the
        # lean IPC path — only encoded bytes crossed the pool boundary)
        # or round-trip dense updates under error feedback.
        return self._finalize_comms(updates, tasks)

    # Evaluation --------------------------------------------------------- #
    def _eval_bounds(self) -> List[Tuple[int, int]]:
        n = len(self.clients)
        per_chunk = -(-n // self._n_workers)  # ceil division
        return [(lo, min(lo + per_chunk, n)) for lo in range(0, n, per_chunk)]

    def _dispatch_eval(self, w: np.ndarray, need_train: bool, need_test: bool):
        self.ensure_started()
        chunks = [
            (w, lo, hi, need_train, need_test) for lo, hi in self._eval_bounds()
        ]
        return list(self._pool.map(_eval_chunk, chunks))

    def train_loss(self, w: np.ndarray) -> float:
        self._require_bound()
        if self.eval_mode == "stacked":
            # One fused forward on the server beats shipping the model to
            # every worker; both executors share this exact code path.
            return self.evaluator.train_loss(w)
        results = self._dispatch_eval(w, need_train=True, need_test=False)
        losses = np.concatenate([np.asarray(r[0]) for r in results])
        return self.evaluator.reduce_train_losses(losses)

    def test_accuracy(self, w: np.ndarray) -> float:
        self._require_bound()
        if self.eval_mode == "stacked":
            return self.evaluator.test_accuracy(w)
        results = self._dispatch_eval(w, need_train=False, need_test=True)
        correct = sum(r[1] for r in results)
        total = sum(r[2] for r in results)
        return self.evaluator.reduce_test_counts(correct, total)
