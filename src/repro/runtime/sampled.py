"""Stratified subsampled federation evaluation with confidence intervals.

Exhaustive evaluation is the scaling wall of the server loop: the local
solve phase touches only the K selected devices, but
:class:`~repro.runtime.evaluation.FederationEvaluator` walks *every*
device each round, so at 10^4+ devices the round is evaluation-dominated
(the committed ``BENCH_runtime.json`` notes this at every 1000-device
row).  :class:`SampledEvaluator` replaces the exhaustive oracle with a
survey estimate:

* Devices are stratified **by local training size** into equal-count
  strata (size is the aggregation weight ``p_k = n_k / n``, so it is the
  dominant driver of a device's influence on the global objective — and
  under the paper's heavy-tailed size laws an unstratified uniform sample
  routinely misses the big devices that carry most of the mass).
* Each evaluation draws a proportionally-allocated, per-stratum uniform
  sample **without replacement** from entropy
  ``SeedSequence([seed, round, salt])`` — a pure function of
  ``(seed, round)``, so any two runs (on any executor) evaluate identical
  samples and histories stay reproducible.
* The point estimate is the stratified ratio estimator: within stratum
  ``h``, the weighted mean of the sampled per-device statistics (weights
  ``p_k`` for the training objective, held-out sample counts for test
  accuracy) estimates the stratum mean, and strata recombine with their
  true total weights ``P_h`` — so the estimator is exact (zero error, not
  just unbiased) whenever every stratum is fully sampled.
* The reported ``ci_halfwidth`` is a normal-approximation 95% interval
  from the within-stratum sample variances with finite-population
  correction; it shrinks ~``1/sqrt(sample_size)`` under proportional
  allocation, and collapses to 0 on full-census rounds.
* Every ``full_every`` rounds (when enabled) the evaluator takes a
  **full-evaluation checkpoint** through the executor's exhaustive oracle
  — ground truth anchoring the sampled series, bit-identical to what an
  unsampled run would have recorded on those rounds.

The sampled path streams per-device forwards through the trainer's client
pool, so on a lazily-materializing store each evaluation materializes
O(sample size) devices, not the federation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..telemetry import resolve_telemetry

if TYPE_CHECKING:  # avoid a circular import with repro.core
    from ..core.client import Client

#: Entropy salt separating evaluation sampling from device selection,
#: straggler draws, and mini-batch entropy (all derived from the same
#: trainer seed).
_EVAL_SAMPLE_SALT = 0xE7A1

#: Two-sided 95% normal quantile used for the confidence intervals.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class EvalEstimate:
    """One evaluation result: point estimate plus sampling metadata.

    Attributes
    ----------
    value:
        The point estimate (global train loss or test accuracy).
    ci_halfwidth:
        95% normal-approximation half-width of the estimate; ``0.0`` on
        full-census rounds.
    sample_size:
        Devices actually evaluated.
    full:
        ``True`` when this was an exhaustive full-evaluation checkpoint.
    """

    value: float
    ci_halfwidth: float
    sample_size: int
    full: bool = False


class StratifiedClientSampler:
    """Deterministic size-stratified client sampling.

    Clients are sorted by training size (stable, so equal sizes keep id
    order) and split into ``num_strata`` equal-count contiguous strata;
    :meth:`sample` allocates a requested sample size proportionally across
    strata (largest-remainder rounding, at least one device per stratum)
    and draws uniformly without replacement inside each stratum from
    ``SeedSequence([seed, round_idx, salt])``.

    Pure function of ``(train_sizes, num_strata, seed, round_idx,
    sample_size)`` — no internal state — which is what makes sampled
    histories identical across executors and across reruns.
    """

    def __init__(
        self,
        train_sizes: Sequence[int],
        num_strata: int = 10,
        seed: int = 0,
    ) -> None:
        sizes = np.asarray(train_sizes, dtype=np.int64)
        if sizes.ndim != 1 or len(sizes) == 0:
            raise ValueError("train_sizes must be a non-empty 1-D sequence")
        if num_strata < 1:
            raise ValueError("num_strata must be at least 1")
        self.num_clients = int(len(sizes))
        self.seed = int(seed)
        order = np.argsort(sizes, kind="stable")
        self.strata: List[np.ndarray] = [
            np.sort(part)
            for part in np.array_split(order, min(num_strata, len(sizes)))
            if len(part)
        ]
        self.num_strata = len(self.strata)
        self._stratum_sizes = np.array(
            [len(s) for s in self.strata], dtype=np.int64
        )

    def allocate(self, sample_size: int) -> np.ndarray:
        """Per-stratum sample counts for a total of ``sample_size`` devices.

        Proportional allocation with largest-remainder rounding; every
        stratum gets at least one device (so no stratum's weight is ever
        silently dropped), and no stratum is asked for more devices than
        it holds.  The returned counts sum to
        ``min(sample_size, num_clients)`` whenever
        ``sample_size >= num_strata``.
        """
        if sample_size < 1:
            raise ValueError("sample_size must be at least 1")
        n_h = self._stratum_sizes
        total = int(min(sample_size, self.num_clients))
        raw = total * n_h / n_h.sum()
        counts = np.maximum(np.floor(raw).astype(np.int64), 1)
        counts = np.minimum(counts, n_h)
        # Largest-remainder top-up / overflow trim, deterministic order.
        while counts.sum() < total:
            room = counts < n_h
            if not room.any():
                break
            frac = np.where(room, raw - counts, -np.inf)
            counts[int(np.argmax(frac))] += 1
        while counts.sum() > total:
            shrinkable = counts > 1
            if not shrinkable.any():
                break
            excess = np.where(shrinkable, counts - raw, -np.inf)
            counts[int(np.argmax(excess))] -= 1
        return counts

    def sample(self, round_idx: int, sample_size: int) -> List[np.ndarray]:
        """Draw the round's per-stratum client-id samples (sorted ids)."""
        counts = self.allocate(sample_size)
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self.seed, int(round_idx), _EVAL_SAMPLE_SALT]
            )
        )
        picks: List[np.ndarray] = []
        for stratum, m in zip(self.strata, counts):
            if m >= len(stratum):
                picks.append(stratum.copy())
            else:
                picks.append(
                    np.sort(rng.choice(stratum, size=int(m), replace=False))
                )
        return picks


def _stratified_estimate(
    strata: Sequence[np.ndarray],
    picks: Sequence[np.ndarray],
    values: dict,
    weights: np.ndarray,
) -> tuple:
    """Combine per-stratum samples into ``(estimate, ci_halfwidth)``.

    ``values`` maps sampled client id -> statistic; ``weights`` holds every
    client's nonnegative combination weight (``p_k`` masses or held-out
    counts).  Strata whose *sampled* devices carry zero weight fall back
    to zero contribution and the estimate renormalizes over the stratum
    weight actually represented — relevant only for test accuracy on
    federations where some devices hold no held-out data.
    """
    total_weight = float(weights.sum())
    if total_weight <= 0:
        raise ValueError("no positive weights to combine")
    estimate = 0.0
    variance = 0.0
    covered = 0.0
    for stratum, pick in zip(strata, picks):
        p_h = float(weights[stratum].sum()) / total_weight
        if p_h == 0.0 or len(pick) == 0:
            continue
        w_s = weights[pick].astype(np.float64)
        w_sum = float(w_s.sum())
        if w_sum <= 0:
            continue
        vals = np.array([values[int(k)] for k in pick], dtype=np.float64)
        w_norm = w_s / w_sum
        mean_h = float(w_norm @ vals)
        estimate += p_h * mean_h
        covered += p_h
        m, n_h = len(pick), len(stratum)
        if 1 < m < n_h:
            # Weighted sample variance (effective-sample-size corrected)
            # with finite-population correction.
            centered = vals - mean_h
            var_h = float(w_norm @ (centered * centered)) * m / (m - 1)
            variance += p_h * p_h * var_h / m * (1.0 - m / n_h)
    if covered == 0.0:
        raise ValueError("sampled devices carry no evaluation weight")
    estimate /= covered
    return estimate, Z_95 * float(np.sqrt(max(variance, 0.0))) / covered


class SampledEvaluator:
    """Size-stratified sampled train-loss / test-accuracy estimates.

    Parameters
    ----------
    clients:
        The federation's client sequence (typically the trainer's
        :class:`~repro.core.client.ClientPool`); only sampled devices are
        touched per evaluation.
    train_sizes, test_sizes:
        Per-client sample counts (store metadata) defining strata and
        combination weights.
    sample_size:
        Devices evaluated per (non-checkpoint) evaluation.
    num_strata:
        Size strata count (equal-count split).
    seed:
        Round-sample entropy root — use the trainer's seed so the sampled
        schedule is part of the run's reproducible description.
    full_every:
        Every this many rounds, delegate to ``full_oracle`` for an
        exhaustive ground-truth checkpoint (0 disables periodic
        checkpoints).
    full_oracle:
        Object with ``train_loss(w)`` / ``test_accuracy(w)`` — the bound
        executor (or a :class:`FederationEvaluator`) — used for
        checkpoints; required when ``full_every > 0``.
    telemetry:
        Emits ``eval:sampled_train_loss`` / ``eval:sampled_test_accuracy``
        spans carrying the sample size; defaults to the shared no-op.
    """

    def __init__(
        self,
        clients: Sequence["Client"],
        train_sizes: Sequence[int],
        test_sizes: Sequence[int],
        sample_size: int = 100,
        num_strata: int = 10,
        seed: int = 0,
        full_every: int = 0,
        full_oracle=None,
        label: str = "",
        telemetry=None,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample_size must be at least 1")
        if full_every < 0:
            raise ValueError("full_every must be non-negative")
        if full_every > 0 and full_oracle is None:
            raise ValueError(
                "full_every > 0 needs a full_oracle to take checkpoints"
            )
        self.clients = clients
        self.sampler = StratifiedClientSampler(
            train_sizes, num_strata=num_strata, seed=seed
        )
        self.sample_size = int(sample_size)
        self.full_every = int(full_every)
        self.full_oracle = full_oracle
        self.label = label
        self.telemetry = resolve_telemetry(telemetry)
        masses = np.asarray(train_sizes, dtype=np.float64)
        self._train_weights = masses / masses.sum()
        self._test_weights = np.asarray(test_sizes, dtype=np.float64)
        self._num_clients = len(masses)

    def is_full_round(self, round_idx: int) -> bool:
        """Whether ``round_idx`` is a periodic full-evaluation checkpoint."""
        return self.full_every > 0 and (round_idx % self.full_every) == 0

    # ------------------------------------------------------------------ #
    def _estimate(
        self,
        w: np.ndarray,
        round_idx: int,
        weights: np.ndarray,
        measure,
        span: str,
    ) -> EvalEstimate:
        t0 = time.perf_counter() if self.telemetry.enabled else 0.0
        picks = self.sampler.sample(round_idx, self.sample_size)
        values = {}
        for pick in picks:
            for cid in pick:
                cid = int(cid)
                if weights[cid] > 0:
                    values[cid] = measure(self.clients[cid], w)
                else:  # zero weight: never evaluated, contributes nothing
                    values[cid] = 0.0
        value, halfwidth = _stratified_estimate(
            self.sampler.strata, picks, values, weights
        )
        n_sampled = int(sum(len(p) for p in picks))
        if self.telemetry.enabled:
            self.telemetry.record_span(
                span,
                time.perf_counter() - t0,
                mode="sampled",
                round_idx=round_idx,
                sample_size=n_sampled,
                ci_halfwidth=halfwidth,
            )
        return EvalEstimate(
            value=value,
            ci_halfwidth=halfwidth,
            sample_size=n_sampled,
            full=n_sampled >= self._num_clients,
        )

    def train_loss(self, w: np.ndarray, round_idx: int) -> EvalEstimate:
        """Estimate the global objective ``f(w)`` from this round's sample."""
        if self.is_full_round(round_idx):
            return EvalEstimate(
                value=float(self.full_oracle.train_loss(w)),
                ci_halfwidth=0.0,
                sample_size=self._num_clients,
                full=True,
            )
        return self._estimate(
            w,
            round_idx,
            self._train_weights,
            lambda client, w_: client.train_loss(w_),
            "eval:sampled_train_loss",
        )

    def test_accuracy(self, w: np.ndarray, round_idx: int) -> EvalEstimate:
        """Estimate global test accuracy from this round's sample."""
        if self.is_full_round(round_idx):
            return EvalEstimate(
                value=float(self.full_oracle.test_accuracy(w)),
                ci_halfwidth=0.0,
                sample_size=self._num_clients,
                full=True,
            )

        def accuracy(client: "Client", w_: np.ndarray) -> float:
            correct, total = client.test_metrics(w_)
            return correct / total if total else 0.0

        return self._estimate(
            w,
            round_idx,
            self._test_weights,
            accuracy,
            "eval:sampled_test_accuracy",
        )
