"""Vectorized cohort local solver: one stacked kernel for a whole round.

The scalar path runs each selected device's local epochs one mini-batch at
a time through ``model.set_params()`` + ``loss_and_gradient()`` — a
10-client round with ``E = 20`` epochs issues thousands of tiny GEMMs,
each paying full Python/NumPy dispatch overhead.  The paper's headline
experiments (1000-device synthetic and FEMNIST logistic models) are
exactly the workload where stacking pays off:
:class:`CohortExecutor` packs the selected clients' weight vectors into a
stacked matrix and advances *all* clients' FedProx local solves
simultaneously with batched kernels.

Mechanics
---------
* **Scheduling.**  Each task's mini-batch schedule is drawn from the same
  ``(seed, round, client, occurrence)`` entropy tuple as the scalar path
  (:func:`~repro.runtime.executor.task_rng` + the solver's
  ``stacked_plan``), so batch orders are identical by construction.  The
  skew-aware packing planner (:mod:`repro.runtime.packing`) then bin-packs
  the K client chains into ``L <= K`` *lanes* of capacity
  ``t_max = max_k T_k`` (first-fit decreasing), running short chains
  back-to-back in one lane.  Under the paper's power-law budget skew this
  shrinks the stacked buffers from K-wide to near the information-theoretic
  minimum ``ceil(sum T_k / t_max)``; balanced cohorts degenerate to the
  legacy one-client-per-row prefix schedule exactly.  The achieved/ideal
  width ratio is emitted as the ``cohort.pack_efficiency`` gauge.
* **Ragged data.**  The cohort's selected training shards are concatenated
  once per round (plus one zero pad row, integer dtypes preserved so token
  sequences survive); each step gathers an ``(A, B, ...)`` block through a
  precomputed ``(t_max, L, b_max)`` index tensor whose padding entries
  point at the pad row.  A float mask zeroes padding contributions before
  the backward GEMMs, so padded rows add exact ``±0.0`` terms.
* **Stragglers.**  Lanes are ordered by descending total load, making the
  busy set at any step a *prefix* of the stack: when a lane's last chain
  ends it simply drops out of the stacked loop.  Time decomposes into
  *segments* between chain boundaries; at each boundary finishing chains
  copy their lane row out and starting chains load their task's ``w_t``,
  µ, and correction (and reset per-row solver state via
  ``stacked_reset``).  Results are restored to task order at the end.
* **Determinism.**  Model kernels (``stacked_gradient``) and solver steps
  (``stacked_step``, fed per-row local step indices when packed lanes sit
  at different chain offsets) replicate the scalar path's floating-point
  operation order; the proximal term ``µ(w_k − w_t)`` and optional FedDane
  correction are applied row-wise exactly as
  :class:`~repro.optim.proximal.LocalObjective` applies them.  Each
  client's chain still runs its own steps in order against only its own
  row, so histories match :class:`~repro.runtime.executor.SerialExecutor`
  bitwise on the GEMM-accumulation-stable kernels and within 1e-12
  otherwise (enforced by ``tests/test_runtime_cohort.py``).
  γ-inexactness is measured with the *same* :class:`LocalObjective` code
  the scalar path uses, so γ statistics agree to the same precision.

Capability gating mirrors the evaluation fast path: the model must
advertise ``supports_stacked_local_solve`` and the solver
``supports_stacked_solve``; binding anything else raises ``TypeError`` —
cohort execution never silently degrades to serial.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from ..telemetry import resolve_telemetry
from .executor import (
    LocalTask,
    RoundExecutor,
    apply_update_fault,
    task_effective_epochs,
    task_rng,
    task_round,
)
from .packing import plan_cohort

if TYPE_CHECKING:  # avoid a circular import with repro.core
    from ..core.client import Client, ClientUpdate
    from ..models.base import FederatedModel
    from ..optim.base import LocalSolver

# Upper bound on the per-chunk batch staging buffer (gathered X blocks).
# Big enough to amortize the fancy-index gather over hundreds of steps,
# small enough to stay cache/memory friendly at any federation scale.
_GATHER_CHUNK_BYTES = 8 << 20


def solve_cohort(
    tasks: Sequence[LocalTask],
    clients: Sequence["Client"],
    model: "FederatedModel",
    solver: "LocalSolver",
    telemetry=None,
) -> List["ClientUpdate"]:
    """Run every task's local solve in one stacked loop; task-order results.

    When ``telemetry`` is enabled, the solve's internal phase splits are
    emitted as ``cohort:plan`` (batch schedules + lane packing),
    ``cohort:pack`` (shard concatenation + gather-plan build),
    ``cohort:kernel`` (the stacked step loop), and ``cohort:finalize``
    (task-order restore + γ measurement) spans — plus the
    ``cohort.pack_efficiency`` gauge (achieved width / ideal width of the
    packed lane schedule).
    """
    import time

    from ..core.client import ClientUpdate  # deferred: core imports runtime
    from ..optim.inexactness import gamma_inexactness

    telemetry = resolve_telemetry(telemetry)
    round_idx = task_round(tasks[0]) if tasks else None
    t_phase = time.perf_counter() if telemetry.enabled else 0.0

    K = len(tasks)
    d = model.n_params

    # Per-task batch schedules, drawn exactly as the scalar solver draws
    # them (one permutation per started epoch from the task's entropy).
    # Crash faults truncate the executed budget here, exactly as the
    # scalar path truncates it — a crashed client is scheduled like a
    # straggler whose budget ends at the crash point.
    plans = [
        solver.stacked_plan(
            clients[task.client_id].data.num_train,
            task_effective_epochs(task),
            task_rng(task),
        )
        for task in tasks
    ]

    plan = plan_cohort([len(p) for p in plans])
    L = plan.n_lanes
    t_max = plan.t_max
    b_max = max(len(batch) for p in plans for batch in p)

    if telemetry.enabled:
        now = time.perf_counter()
        telemetry.record_span(
            "cohort:plan", now - t_phase, round_idx=round_idx,
            clients=K, steps=t_max, lanes=L,
        )
        telemetry.metric(
            "cohort.pack_efficiency", plan.pack_efficiency,
            round_idx=round_idx, kind="gauge",
            lanes=L, clients=K, steps=t_max,
            ideal_width=plan.ideal_width,
        )
        t_phase = now

    # Concatenate the cohort's shards once (task order); the final row is
    # a zero pad target for out-of-batch gather indices.  Integer feature
    # dtypes (token sequences) are preserved — the pad row is token 0,
    # whose gradient contribution the mask zeroes exactly.
    xs, ys, offsets = [], [], []
    base = 0
    for task in tasks:
        data = clients[task.client_id].data
        xs.append(data.train_x)
        ys.append(data.train_y)
        offsets.append(base)
        base += data.num_train
    feat_shape = xs[0].shape[1:]
    x_dtype = xs[0].dtype
    if not np.issubdtype(x_dtype, np.integer):
        x_dtype = np.float64
    x_cat = np.zeros((base + 1,) + feat_shape, dtype=x_dtype)
    x_cat[:base] = np.concatenate(xs)
    y_cat = np.zeros(base + 1, dtype=np.int64)
    y_cat[:base] = np.concatenate(ys)
    pad = base  # index of the zero row

    # Precomputed gather plan over (step, lane, batch-slot): indices,
    # masks and batch sizes, scattered once per chain placement — a Python
    # loop over every (step, sample) would cost more than the solve.
    idx = np.full((t_max, L, b_max), pad, dtype=np.int64)
    mask = np.zeros((t_max, L, b_max), dtype=np.float64)
    counts = np.ones((t_max, L), dtype=np.float64)
    for p in plan.placements:
        batches = plans[p.task]
        T = len(batches)
        flat = np.concatenate(batches)
        flat += offsets[p.task]
        lens = np.fromiter((len(b) for b in batches), dtype=np.int64, count=T)
        step_of = np.repeat(np.arange(T), lens) + p.start
        col_of = np.arange(len(flat)) - np.repeat(np.cumsum(lens) - lens, lens)
        idx[step_of, p.lane, col_of] = flat
        mask[step_of, p.lane, col_of] = 1.0
        counts[p.start : p.stop, p.lane] = lens
    counts3 = counts[:, :, None, None]  # kernel-shaped (t, L, 1, 1) view

    # Stacked per-lane weights and subproblem parameters; rows are loaded
    # lazily at each chain's start segment (float64 copies exactly as the
    # scalar solvers take them) and copied out at its end segment.
    W = np.empty((L, d), dtype=np.float64)
    W_ref = np.empty((L, d), dtype=np.float64)
    mus = np.zeros(L, dtype=np.float64)
    corrections: List[object] = [None] * L
    results: List[np.ndarray] = [None] * K  # type: ignore[list-item]

    state = solver.stacked_state((L, d))
    prox = np.empty((L, d), dtype=np.float64)
    feat_size = int(np.prod(feat_shape)) if feat_shape else 1

    if telemetry.enabled:
        now = time.perf_counter()
        telemetry.record_span(
            "cohort:pack", now - t_phase, round_idx=round_idx,
            rows=int(base), clients=K, lanes=L,
        )
        t_phase = now

    # The step loop decomposes into the planner's segments of constant
    # busy width ``a``; within a segment each active lane advances one
    # fixed chain, so batches for many steps are gathered in one fancy
    # index (chunked to bound the staging buffer) and the per-step Python
    # cost is one kernel call plus slice views.
    stacked_gradient = model.stacked_gradient
    stacked_step = solver.stacked_step
    for seg in plan.segments:
        for p in seg.starts:
            lane = p.lane
            task = tasks[p.task]
            W[lane] = np.asarray(task.w_global, dtype=np.float64)
            W_ref[lane] = W[lane]
            mus[lane] = task.mu
            corrections[lane] = task.correction
            solver.stacked_reset(state, lane)
        a = seg.width
        Wa = W[:a]
        Wr = W_ref[:a]
        mua = mus[:a, None]
        diff = prox[:a]
        any_mu = bool(np.any(mus[:a] > 0))
        any_corr = any(c is not None for c in corrections[:a])
        base_steps = seg.base_steps
        chunk = max(1, _GATHER_CHUNK_BYTES // max(1, a * b_max * feat_size * 8))
        for lo in range(seg.lo, seg.hi, chunk):
            hi = min(lo + chunk, seg.hi)
            Xc = x_cat[idx[lo:hi, :a]]
            yc = y_cat[idx[lo:hi, :a]]
            mc = mask[lo:hi, :a]
            cc = counts3[lo:hi, :a]
            # Fully-dense steps (no ragged batch in any active row) skip the
            # identity mask multiply — multiplying by all-ones is bitwise
            # neutral, so skipping it cannot perturb the histories.
            dense = mc.all(axis=(1, 2))
            for s in range(hi - lo):
                G = stacked_gradient(
                    Wa, Xc[s], yc[s], None if dense[s] else mc[s], cc[s]
                )
                if any_mu:
                    # grad + mu * (w - w_ref), as in LocalObjective.
                    np.subtract(Wa, Wr, out=diff)
                    diff *= mua
                    G += diff
                if any_corr:
                    for row in range(a):
                        if corrections[row] is not None:
                            G[row] += corrections[row]
                off = lo - seg.lo + s
                if seg.uniform:
                    stacked_step(Wa, G, state, int(base_steps[0]) + off)
                else:
                    stacked_step(Wa, G, state, base_steps + off)
        for p in seg.ends:
            results[p.task] = W[p.lane].copy()

    if telemetry.enabled:
        now = time.perf_counter()
        telemetry.record_span(
            "cohort:kernel", now - t_phase, round_idx=round_idx,
            steps=t_max, clients=K, lanes=L,
        )
        t_phase = now

    # Emit updates in task order with the scalar path's metadata.
    updates: List["ClientUpdate"] = [None] * K  # type: ignore[list-item]
    for i, task in enumerate(tasks):
        client = clients[task.client_id]
        w_local = results[i]
        gamma = None
        if task.measure_gamma:
            objective = client.make_objective(
                task.w_global, task.mu, correction=task.correction
            )
            gamma = gamma_inexactness(objective, w_local, task.w_global)
        updates[i] = ClientUpdate(
            client_id=task.client_id,
            w=w_local,
            num_train=client.data.num_train,
            epochs=task_effective_epochs(task),
            gradient_evaluations=len(plans[i]),
            gamma=gamma,
        )
        apply_update_fault(updates[i], task)

    if telemetry.enabled:
        telemetry.record_span(
            "cohort:finalize", time.perf_counter() - t_phase,
            round_idx=round_idx, clients=K,
        )
    return updates


class CohortExecutor(RoundExecutor):
    """In-process round execution through the stacked cohort fast path.

    Requires a model advertising ``supports_stacked_local_solve`` and a
    solver advertising ``supports_stacked_solve``; anything else fails at
    bind time with ``TypeError`` (mirroring
    :class:`~repro.runtime.parallel.ParallelExecutor`'s replica gating).
    Evaluation shares the bound :class:`FederationEvaluator`, so it is
    identical to the serial path.
    """

    def _on_bind(self) -> None:
        if not getattr(self.model, "supports_stacked_local_solve", False):
            reason = getattr(self.model, "stacked_local_solve_reason", None)
            detail = f" ({reason})" if reason else ""
            raise TypeError(
                f"CohortExecutor requires a model implementing the stacked "
                f"local-solve protocol; {type(self.model).__name__} does not "
                f"advertise supports_stacked_local_solve{detail}. Implement "
                "stacked_gradient() or use SerialExecutor — cohort execution "
                "will not silently fall back to serial."
            )
        if not getattr(self.solver, "supports_stacked_solve", False):
            raise TypeError(
                f"CohortExecutor requires a solver implementing the stacked "
                f"solve protocol; {type(self.solver).__name__} does not "
                "advertise supports_stacked_solve. Implement stacked_plan/"
                "stacked_state/stacked_step or use SerialExecutor."
            )

    def run_local_solves(self, tasks: Sequence[LocalTask]) -> List["ClientUpdate"]:
        self._require_bound()
        if not tasks:
            return []
        updates = solve_cohort(
            tasks, self.clients, self.model, self.solver,
            telemetry=self.telemetry,
        )
        # The stacked kernels emit dense iterates (they ignore any
        # device-side codec on the tasks); the comms finalize round-trips
        # them server-side, so lossy-codec histories agree with the
        # serial/parallel engines — encoding is a pure function of
        # (update, w_global, task entropy) either way.
        return self._finalize_comms(updates, tasks)
