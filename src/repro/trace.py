"""``python -m repro.trace`` — inspect, replay, and gate run artifacts.

Subcommands over the JSONL run ledgers written by
:class:`~repro.telemetry.sinks.JSONLSink`:

* ``summarize RUN.jsonl`` — identity, wall-clock, final metrics, ledger
  verification (digest/truncation/tampering), per-phase percentiles.
* ``timeline RUN.jsonl`` — per-round ASCII bars segmented by phase.
* ``diff A.jsonl B.jsonl [--tol X]`` — field-level history comparison
  (e.g. a serial vs cohort pair; ``--tol 0`` demands bit-identity).
* ``replay RUN.jsonl`` — rebuild the trainer from the manifest,
  re-execute, and assert the recorded history reproduces bit-for-bit.
* ``check BENCH.jsonl --baseline BENCH_runtime.json`` — structural
  verification plus a throughput-regression gate for bench artifacts.

Exit status is 0 on success and 1 when the inspected artifact fails
(ledger issues, replay divergence, diff divergence, check failures), so
every subcommand works as a CI gate.  Multi-run artifacts (appended
sinks) are addressed with ``--run N``; ``--run all`` where supported.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .telemetry.analysis import (
    check_runs,
    diff_runs,
    format_summary,
    summarize_run,
    timeline,
)
from .telemetry.ledger import RunArtifact, load_run, load_runs
from .telemetry.replay import ReplayError, replay_run

__all__ = ["main"]


def _select_runs(path: str, which: str) -> List[RunArtifact]:
    """Load the requested run(s): an index or ``all``."""
    if which == "all":
        return load_runs(path)
    return [load_run(path, run=int(which))]


def _cmd_summarize(args: argparse.Namespace) -> int:
    status = 0
    for artifact in _select_runs(args.artifact, args.run):
        summary = summarize_run(artifact)
        print(format_summary(summary))
        if summary["issues"] or (args.strict and summary["tiling_issues"]):
            status = 1
    return status


def _cmd_timeline(args: argparse.Namespace) -> int:
    artifact = load_run(args.artifact, run=int(args.run))
    print(timeline(artifact, width=args.width))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    a = load_run(args.artifact_a, run=args.run_a)
    b = load_run(args.artifact_b, run=args.run_b)
    result = diff_runs(a, b, tol=args.tol)
    print(result.describe())
    return 0 if result.matches else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        report = replay_run(
            args.artifact, run=int(args.run), num_rounds=args.rounds
        )
    except ReplayError as exc:
        print(f"replay impossible: {exc}", file=sys.stderr)
        return 1
    print(report.describe())
    return 0 if report.matches and not report.issues else 1


def _cmd_check(args: argparse.Namespace) -> int:
    baseline = None
    if args.baseline:
        import json

        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    report = check_runs(
        load_runs(args.artifact), baseline=baseline, factor=args.factor
    )
    print(report.describe())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "summarize", help="one-screen run digest with ledger verification"
    )
    p.add_argument("artifact", help="JSONL run artifact")
    p.add_argument(
        "--run", default="all",
        help="run index in a multi-run artifact, or 'all' (default)",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="also fail on span-tiling issues",
    )
    p.set_defaults(func=_cmd_summarize)

    p = sub.add_parser("timeline", help="per-round ASCII phase timeline")
    p.add_argument("artifact")
    p.add_argument("--run", default="0", help="run index (default 0)")
    p.add_argument("--width", type=int, default=48, help="bar width in chars")
    p.set_defaults(func=_cmd_timeline)

    p = sub.add_parser(
        "diff", help="field-level history comparison of two runs"
    )
    p.add_argument("artifact_a")
    p.add_argument("artifact_b")
    p.add_argument("--run-a", type=int, default=0, help="run index in A")
    p.add_argument("--run-b", type=int, default=0, help="run index in B")
    p.add_argument(
        "--tol", type=float, default=0.0,
        help="absolute tolerance for float fields (default 0 = bit-identity)",
    )
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "replay", help="re-execute a run and assert bit-identical history"
    )
    p.add_argument("artifact")
    p.add_argument("--run", default="0", help="run index (default 0)")
    p.add_argument(
        "--rounds", type=int, default=None,
        help="rounds to re-execute (default: all recorded)",
    )
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser(
        "check", help="verify bench artifacts and gate against a baseline"
    )
    p.add_argument("artifact", help="bench telemetry JSONL (multi-run)")
    p.add_argument(
        "--baseline", default=None,
        help="BENCH_runtime.json to gate throughput against",
    )
    p.add_argument(
        "--factor", type=float, default=4.0,
        help="allowed slowdown vs baseline rounds/sec (default 4x)",
    )
    p.set_defaults(func=_cmd_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
