"""Federated dataset containers.

A federated dataset is a collection of per-device datasets.  Each device
holds its own train/test split (the paper splits every device's local data
80/20).  :class:`FederatedDataset` also computes the summary statistics the
paper reports in Table 1 (devices, samples, mean and stdev of samples per
device).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np


@dataclass
class ClientData:
    """One device's local data.

    Attributes
    ----------
    client_id:
        Stable identifier within the federated dataset.
    train_x, train_y:
        Local training arrays; ``train_x`` is ``(n, ...)`` and ``train_y``
        is ``(n,)`` integer labels.
    test_x, test_y:
        Local held-out arrays (possibly empty).
    """

    client_id: int
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def num_train(self) -> int:
        """Number of local training samples (the paper's ``n_k``)."""
        return len(self.train_y)

    @property
    def num_test(self) -> int:
        """Number of local test samples."""
        return len(self.test_y)

    @property
    def num_samples(self) -> int:
        """Total local samples (train + test)."""
        return self.num_train + self.num_test

    def __post_init__(self) -> None:
        if len(self.train_x) != len(self.train_y):
            raise ValueError(
                f"client {self.client_id}: train_x/train_y length mismatch"
            )
        if len(self.test_x) != len(self.test_y):
            raise ValueError(
                f"client {self.client_id}: test_x/test_y length mismatch"
            )
        if self.num_train == 0:
            raise ValueError(f"client {self.client_id} has no training samples")


@dataclass
class DatasetStats:
    """Table 1 row: summary statistics of a federated dataset."""

    name: str
    devices: int
    samples: int
    mean_samples_per_device: float
    stdev_samples_per_device: float

    def as_row(self) -> Dict[str, object]:
        """Dict form used by the Table 1 harness."""
        return {
            "Dataset": self.name,
            "Devices": self.devices,
            "Samples": self.samples,
            "Samples/device mean": round(self.mean_samples_per_device),
            "Samples/device stdev": round(self.stdev_samples_per_device),
        }


class FederatedDataset:
    """A named collection of :class:`ClientData` backed by a client store.

    Per-client data lives behind a :class:`~repro.datasets.store.ClientStore`.
    Constructing from a ``clients`` sequence (the historical signature)
    wraps it in the eager in-memory store — bit-identical to the
    pre-store behavior; :meth:`from_store` attaches a lazily-materializing
    store (memory-mapped shards, on-demand synthetic regeneration) so
    million-device federations cost O(active cohort) memory.

    Parameters
    ----------
    name:
        Dataset name (used in experiment output).
    clients:
        Per-device data (eager path; mutually exclusive with ``store``).
    num_classes:
        Number of label classes across the federation.
    input_dim:
        Feature width for vector inputs, or sequence length for integer
        token inputs (informational).
    store:
        A prebuilt client store (lazy path; keyword-only).
    recipe:
        Optional JSON-friendly reconstruction descriptor, set by the
        dataset builders when the federation is a pure function of its
        generation parameters (``{"builder": ..., **kwargs}``).  Embedded
        in run-ledger manifests so :mod:`repro.telemetry.replay` can
        regenerate the exact federation; ``None`` means the dataset is not
        reconstructible from scalars (externally loaded data, or a builder
        fed a caller-owned ``rng``).
    """

    def __init__(
        self,
        name: str,
        clients: Optional[Sequence[ClientData]] = None,
        num_classes: int = 0,
        input_dim: Optional[int] = None,
        *,
        store=None,
        recipe: Optional[Dict[str, object]] = None,
    ) -> None:
        if (clients is None) == (store is None):
            raise ValueError(
                "pass exactly one of clients= or store= to FederatedDataset"
            )
        if store is None:
            if not clients:
                raise ValueError(
                    "a federated dataset needs at least one client"
                )
            from .store import EagerClientStore  # deferred: store imports us

            store = EagerClientStore(clients)
        elif len(store) == 0:
            raise ValueError("a federated dataset needs at least one client")
        self.name = name
        self.store = store
        self.num_classes = num_classes
        self.input_dim = input_dim
        self.recipe = recipe

    @classmethod
    def from_store(
        cls,
        name: str,
        store,
        num_classes: int,
        input_dim: Optional[int] = None,
    ) -> "FederatedDataset":
        """Build a dataset over a prebuilt :class:`ClientStore`."""
        return cls(
            name, num_classes=num_classes, input_dim=input_dim, store=store
        )

    @property
    def is_lazy(self) -> bool:
        """Whether client access may materialize data on demand."""
        return bool(getattr(self.store, "lazy", False))

    @property
    def clients(self) -> Sequence[ClientData]:
        """Sequence view of per-device data.

        For the eager store this is the actual in-memory list (the
        historical attribute); for lazy stores it is the store itself —
        indexing materializes one client, and forcing it with ``list()``
        materializes the whole federation (avoid on large stores).
        """
        from .store import EagerClientStore  # deferred: store imports us

        if isinstance(self.store, EagerClientStore):
            return self.store.clients
        return self.store

    def __len__(self) -> int:
        return len(self.store)

    def __iter__(self) -> Iterator[ClientData]:
        return iter(self.store)

    def __getitem__(self, index: int) -> ClientData:
        return self.store[index]

    @property
    def num_devices(self) -> int:
        """Number of devices in the federation."""
        return len(self.store)

    @property
    def train_sizes(self) -> np.ndarray:
        """Per-device training sample counts ``n_k`` (store metadata)."""
        return self.store.train_sizes

    @property
    def test_sizes(self) -> np.ndarray:
        """Per-device held-out sample counts (store metadata)."""
        return self.store.test_sizes

    @property
    def total_train_samples(self) -> int:
        """Total training samples across the federation (the paper's ``n``)."""
        return int(self.train_sizes.sum())

    def sample_fractions(self) -> np.ndarray:
        """The aggregation masses ``p_k = n_k / n`` from Equation 1."""
        sizes = self.train_sizes.astype(np.float64)
        return sizes / sizes.sum()

    def stats(self) -> DatasetStats:
        """Summary statistics in the format of the paper's Table 1.

        Table 1 reports totals over all samples (train + test); computed
        from store metadata, so it never materializes a client.
        """
        counts = (
            np.asarray(self.train_sizes, dtype=np.float64)
            + np.asarray(self.test_sizes, dtype=np.float64)
        )
        return DatasetStats(
            name=self.name,
            devices=self.num_devices,
            samples=int(counts.sum()),
            mean_samples_per_device=float(counts.mean()),
            stdev_samples_per_device=float(counts.std(ddof=1)) if len(counts) > 1 else 0.0,
        )

    def global_train(self) -> tuple:
        """Concatenate all devices' training data (for centralized baselines).

        Materializes every client — intended for eager-scale datasets.
        """
        X = np.concatenate([c.train_x for c in self.store])
        y = np.concatenate([c.train_y for c in self.store])
        return X, y

    def global_test(self) -> tuple:
        """Concatenate all devices' test data (materializes every client)."""
        xs = []
        ys = []
        for c in self.store:
            if c.num_test > 0:
                xs.append(c.test_x)
                ys.append(c.test_y)
        if not xs:
            raise ValueError("no test data in this federated dataset")
        return np.concatenate(xs), np.concatenate(ys)


def train_test_split_client(
    client_id: int,
    X: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator,
    test_fraction: float = 0.2,
) -> ClientData:
    """Split one device's samples into local train/test sets.

    The paper "randomly split[s] the data on each local device into an 80%
    training set and a 20% testing set".  At least one sample is always
    kept for training.
    """
    if not 0.0 <= test_fraction < 1.0:
        raise ValueError("test_fraction must be in [0, 1)")
    n = len(y)
    order = rng.permutation(n)
    n_test = int(n * test_fraction)
    if n - n_test < 1:
        n_test = n - 1
    test_idx, train_idx = order[:n_test], order[n_test:]
    return ClientData(
        client_id=client_id,
        train_x=X[train_idx],
        train_y=y[train_idx],
        test_x=X[test_idx],
        test_y=y[test_idx],
    )
