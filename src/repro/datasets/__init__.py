"""Federated datasets: containers, partitioners, and generators."""

from .federated import (
    ClientData,
    DatasetStats,
    FederatedDataset,
    train_test_split_client,
)
from .from_arrays import federate_arrays
from .leaf_io import load_leaf, save_leaf
from .images import (
    make_femnist_like,
    make_mnist_like,
    make_prototype_image_dataset,
)
from .partition import (
    assign_classes_per_device,
    iid_partition,
    lognormal_sizes,
    power_law_sizes,
)
from .store import (
    DEFAULT_CACHE_CLIENTS,
    ClientStore,
    EagerClientStore,
    MmapShardStore,
    OnDemandSyntheticStore,
    make_synthetic_ondemand,
    resolve_store,
)
from .synthetic import make_synthetic, make_synthetic_iid, synthetic_suite
from .text import make_sent140_like, make_shakespeare_like

__all__ = [
    "ClientData",
    "DatasetStats",
    "FederatedDataset",
    "train_test_split_client",
    "federate_arrays",
    "load_leaf",
    "save_leaf",
    "lognormal_sizes",
    "power_law_sizes",
    "assign_classes_per_device",
    "iid_partition",
    "ClientStore",
    "EagerClientStore",
    "MmapShardStore",
    "OnDemandSyntheticStore",
    "make_synthetic_ondemand",
    "resolve_store",
    "DEFAULT_CACHE_CLIENTS",
    "make_synthetic",
    "make_synthetic_iid",
    "synthetic_suite",
    "make_prototype_image_dataset",
    "make_mnist_like",
    "make_femnist_like",
    "make_shakespeare_like",
    "make_sent140_like",
]
