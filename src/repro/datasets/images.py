"""Synthetic image-classification federations (MNIST / FEMNIST stand-ins).

The offline environment has no access to MNIST or EMNIST, so these
generators produce *class-conditional prototype images*: each class gets a
smooth random prototype in ``[0, 1]^dim`` and samples are noisy copies of
it.  What the paper's MNIST/FEMNIST experiments actually exercise is
**label-skew statistical heterogeneity under a convex model** — each device
holds only 2 (MNIST) or 5 (FEMNIST) classes with power-law sizes — and that
partition scheme is copied exactly (see DESIGN.md §4).

Samples are stored as ``float32`` to keep the 1000-device configuration
within laptop memory.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .federated import ClientData, FederatedDataset, train_test_split_client
from .partition import assign_classes_per_device, power_law_sizes


def _smooth_prototype(
    rng: np.random.Generator, side: int, coarse: int = 7
) -> np.ndarray:
    """A smooth random grayscale pattern built by upsampling a coarse grid.

    Mimics the low-frequency structure of handwritten-digit images: a
    ``coarse x coarse`` random grid is blown up to ``side x side`` with
    nearest-neighbour tiling, then jittered and clipped to [0, 1].
    """
    grid = rng.uniform(0.0, 1.0, size=(coarse, coarse))
    reps = int(np.ceil(side / coarse))
    big = np.kron(grid, np.ones((reps, reps)))[:side, :side]
    return np.clip(big, 0.0, 1.0).reshape(-1)


def make_prototype_image_dataset(
    name: str,
    num_devices: int,
    num_classes: int,
    classes_per_device: int,
    total_samples: int,
    dim: int = 784,
    noise: float = 0.35,
    prototypes_per_class: int = 3,
    style_mix: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    test_fraction: float = 0.2,
    power_law_alpha: float = 1.5,
    min_samples: int = 8,
) -> FederatedDataset:
    """Generate a label-skewed prototype-image federation.

    Each class has several sub-prototypes ("writing styles"): a shared class
    pattern blended with per-style variation.  Samples are noisy copies of a
    randomly chosen style, which keeps classes non-trivially overlapping —
    a closer analogue of handwritten digits than a single prototype.

    Parameters
    ----------
    name:
        Dataset display name.
    num_devices, num_classes, classes_per_device:
        Partition scheme (paper: MNIST = 1000/10/2, FEMNIST = 200/10/5).
    total_samples:
        Total samples across the federation, dealt out with power-law sizes.
    dim:
        Flattened image width; must be a perfect square (28x28 = 784 in the
        paper; reduced configs use e.g. 64 = 8x8).
    noise:
        Pixel-noise standard deviation; larger values increase class
        overlap (and reduce attainable accuracy).
    prototypes_per_class:
        Number of sub-prototypes ("styles") per class.
    style_mix:
        Weight of the per-style pattern in the blend with the shared class
        pattern; 0 collapses every style to one prototype per class.
    rng, seed:
        Randomness.
    test_fraction:
        Per-device held-out fraction.
    power_law_alpha, min_samples:
        Size-skew knobs.
    """
    side = int(np.sqrt(dim))
    if side * side != dim:
        raise ValueError(f"dim must be a perfect square, got {dim}")
    if prototypes_per_class < 1:
        raise ValueError("prototypes_per_class must be at least 1")
    if not 0.0 <= style_mix <= 1.0:
        raise ValueError("style_mix must be in [0, 1]")
    rng = rng if rng is not None else np.random.default_rng(seed)

    # (classes, styles, dim): shared class pattern blended with style noise.
    class_patterns = np.stack(
        [_smooth_prototype(rng, side) for _ in range(num_classes)]
    )
    prototypes = np.empty((num_classes, prototypes_per_class, dim))
    for c in range(num_classes):
        for s in range(prototypes_per_class):
            style = _smooth_prototype(rng, side)
            prototypes[c, s] = np.clip(
                (1.0 - style_mix) * class_patterns[c] + style_mix * style,
                0.0,
                1.0,
            )

    sizes = power_law_sizes(
        rng, num_devices, total_samples, alpha=power_law_alpha, minimum=min_samples
    )
    class_sets = assign_classes_per_device(
        rng, num_devices, num_classes, classes_per_device
    )

    clients: List[ClientData] = []
    for k in range(num_devices):
        allowed = class_sets[k]
        y = rng.choice(allowed, size=sizes[k])
        styles = rng.integers(prototypes_per_class, size=sizes[k])
        X = prototypes[y, styles] + rng.normal(0.0, noise, size=(sizes[k], dim))
        X = np.clip(X, 0.0, 1.0).astype(np.float32)
        clients.append(
            train_test_split_client(k, X, y, rng, test_fraction=test_fraction)
        )

    return FederatedDataset(
        name=name, clients=clients, num_classes=num_classes, input_dim=dim
    )


def make_mnist_like(
    num_devices: int = 1000,
    total_samples: int = 69_035,
    dim: int = 784,
    seed: int = 0,
    **kwargs,
) -> FederatedDataset:
    """MNIST stand-in: 10 classes, 2 classes/device, power-law sizes.

    Defaults reproduce the paper's Table 1 row (1000 devices, 69,035
    samples); pass smaller ``num_devices`` / ``total_samples`` / ``dim``
    for a laptop-scale training run.
    """
    return make_prototype_image_dataset(
        name="MNIST-like",
        num_devices=num_devices,
        num_classes=10,
        classes_per_device=2,
        total_samples=total_samples,
        dim=dim,
        seed=seed,
        **kwargs,
    )


def make_femnist_like(
    num_devices: int = 200,
    total_samples: int = 18_345,
    dim: int = 784,
    seed: int = 0,
    **kwargs,
) -> FederatedDataset:
    """FEMNIST stand-in: 10 classes, 5 classes/device, power-law sizes.

    Defaults reproduce the paper's Table 1 row (200 devices, 18,345
    samples — the 10 lowercase-letter subset of EMNIST).
    """
    return make_prototype_image_dataset(
        name="FEMNIST-like",
        num_devices=num_devices,
        num_classes=10,
        classes_per_device=5,
        total_samples=total_samples,
        dim=dim,
        seed=seed,
        **kwargs,
    )
