"""Partitioning utilities: device sizes and label-skew assignment.

Two forms of statistical heterogeneity appear in the paper's setups:

* **size skew** — "the number of samples per device follows a power law".
  The reference implementation (github.com/litian96/FedProx) realizes this
  with a log-normal draw (``lognormal(4, 2) + 50`` for the synthetic data),
  whose heavy tail is the operative property.  Both a log-normal and a
  Zipf-style power-law sampler are provided.
* **label skew** — each MNIST device holds samples of only 2 digits; each
  FEMNIST device holds 5 of 10 classes.  :func:`assign_classes_per_device`
  reproduces that scheme.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def lognormal_sizes(
    rng: np.random.Generator,
    num_devices: int,
    mean_log: float = 4.0,
    sigma_log: float = 2.0,
    minimum: int = 50,
    cap: Optional[int] = None,
) -> np.ndarray:
    """Heavy-tailed per-device sample counts (reference-implementation style).

    Parameters
    ----------
    rng:
        Randomness source.
    num_devices:
        Number of devices.
    mean_log, sigma_log:
        Log-normal parameters (the reference code uses 4 and 2).
    minimum:
        Added to every draw so no device is starved.
    cap:
        Optional upper bound applied after the draw, to keep single-CPU
        harness runs tractable.

    Returns
    -------
    numpy.ndarray
        Integer sizes, shape ``(num_devices,)``.
    """
    sizes = rng.lognormal(mean_log, sigma_log, num_devices).astype(int) + minimum
    if cap is not None:
        sizes = np.minimum(sizes, cap)
    return sizes


def power_law_sizes(
    rng: np.random.Generator,
    num_devices: int,
    total_samples: int,
    alpha: float = 1.5,
    minimum: int = 2,
) -> np.ndarray:
    """Zipf-style power-law device sizes summing to ``total_samples``.

    Sizes are proportional to ``rank^(-alpha)`` over a random device
    ordering, floored at ``minimum``, and adjusted so they sum exactly to
    ``total_samples``.
    """
    if total_samples < num_devices * minimum:
        raise ValueError("total_samples too small for the requested minimum")
    ranks = np.arange(1, num_devices + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    rng.shuffle(weights)
    raw = weights / weights.sum() * (total_samples - num_devices * minimum)
    sizes = raw.astype(int) + minimum
    # Distribute the integer-truncation remainder one sample at a time.
    deficit = total_samples - sizes.sum()
    if deficit > 0:
        receivers = rng.choice(num_devices, size=deficit, replace=True)
        np.add.at(sizes, receivers, 1)
    return sizes


def assign_classes_per_device(
    rng: np.random.Generator,
    num_devices: int,
    num_classes: int,
    classes_per_device: int,
) -> List[np.ndarray]:
    """Choose which label classes each device may hold.

    Devices cycle through classes in shifted contiguous blocks (the scheme
    used by the reference MNIST partition: device ``k`` holds digits
    ``{k mod 10, (k+1) mod 10}``), with a random per-dataset offset.

    Returns
    -------
    list of numpy.ndarray
        For each device, the sorted class ids it may hold.
    """
    if classes_per_device > num_classes:
        raise ValueError("classes_per_device cannot exceed num_classes")
    offset = int(rng.integers(num_classes))
    assignments = []
    for k in range(num_devices):
        start = (k + offset) % num_classes
        classes = [(start + j) % num_classes for j in range(classes_per_device)]
        assignments.append(np.array(sorted(classes)))
    return assignments


def iid_partition(
    rng: np.random.Generator, num_samples: int, num_devices: int
) -> List[np.ndarray]:
    """Shuffle sample indices and deal them out evenly to devices."""
    order = rng.permutation(num_samples)
    return [np.sort(chunk) for chunk in np.array_split(order, num_devices)]
