"""Federate user-provided arrays.

Downstream users rarely have pre-federated data; this module turns a plain
``(X, y)`` classification dataset into a :class:`FederatedDataset` using
the paper's partition schemes:

* ``"iid"`` — shuffle and deal samples out evenly;
* ``"label_skew"`` — each device holds only ``classes_per_device`` classes
  (the MNIST/FEMNIST scheme);
* ``"power_law"`` — IID class mix but power-law device sizes;
* label-skew and power-law compose when both are requested.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .federated import ClientData, FederatedDataset, train_test_split_client
from .partition import assign_classes_per_device, iid_partition, power_law_sizes


def federate_arrays(
    X: np.ndarray,
    y: np.ndarray,
    num_devices: int,
    scheme: str = "iid",
    classes_per_device: Optional[int] = None,
    power_law_alpha: float = 1.5,
    test_fraction: float = 0.2,
    seed: int = 0,
    name: str = "custom",
) -> FederatedDataset:
    """Partition ``(X, y)`` into a federation.

    Parameters
    ----------
    X, y:
        Sample matrix ``(n, ...)`` and integer labels ``(n,)``.
    num_devices:
        Number of devices to create.
    scheme:
        ``"iid"``, ``"label_skew"`` or ``"power_law"``.
    classes_per_device:
        Required for ``"label_skew"``: how many label classes each device
        may hold (2 for the paper's MNIST partition, 5 for FEMNIST).
    power_law_alpha:
        Size-skew exponent for ``"power_law"``.
    test_fraction:
        Per-device held-out fraction (paper: 20%).
    seed:
        Randomness.
    name:
        Dataset display name.

    Returns
    -------
    FederatedDataset

    Raises
    ------
    ValueError
        On unknown schemes, missing ``classes_per_device``, or when the
        data cannot satisfy the requested partition.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y must have the same length")
    if len(y) < num_devices:
        raise ValueError("fewer samples than devices")
    num_classes = int(y.max()) + 1
    rng = np.random.default_rng(seed)

    if scheme == "iid":
        parts = iid_partition(rng, len(y), num_devices)
    elif scheme == "power_law":
        sizes = power_law_sizes(
            rng, num_devices, total_samples=len(y), alpha=power_law_alpha,
            minimum=max(2, int(1 / max(test_fraction, 0.01)) + 1),
        )
        order = rng.permutation(len(y))
        parts = []
        offset = 0
        for size in sizes:
            parts.append(np.sort(order[offset : offset + size]))
            offset += size
    elif scheme == "label_skew":
        if classes_per_device is None:
            raise ValueError("label_skew requires classes_per_device")
        parts = _label_skew_partition(
            rng, y, num_devices, num_classes, classes_per_device
        )
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    clients: List[ClientData] = []
    for device_id, indices in enumerate(parts):
        if len(indices) == 0:
            raise ValueError(
                f"device {device_id} received no samples; reduce num_devices"
            )
        clients.append(
            train_test_split_client(
                device_id, X[indices], y[indices], rng,
                test_fraction=test_fraction,
            )
        )
    return FederatedDataset(
        name=name, clients=clients, num_classes=num_classes,
        input_dim=X.shape[1] if X.ndim > 1 else None,
    )


def _label_skew_partition(
    rng: np.random.Generator,
    y: np.ndarray,
    num_devices: int,
    num_classes: int,
    classes_per_device: int,
) -> List[np.ndarray]:
    """Split sample indices so each device sees a fixed class subset.

    Each class's samples are divided into equal shards; devices draw one
    shard from each of their assigned classes (round-robin over shards).
    """
    class_sets = assign_classes_per_device(
        rng, num_devices, num_classes, classes_per_device
    )
    # How many devices want each class -> number of shards per class.
    demand = np.zeros(num_classes, dtype=int)
    for classes in class_sets:
        for c in classes:
            demand[c] += 1

    shards: dict = {}
    cursor = np.zeros(num_classes, dtype=int)
    for c in range(num_classes):
        indices = np.flatnonzero(y == c)
        rng.shuffle(indices)
        if demand[c] > 0:
            if len(indices) < demand[c]:
                raise ValueError(
                    f"class {c} has {len(indices)} samples but {demand[c]} "
                    "devices need a shard of it"
                )
            shards[c] = np.array_split(indices, demand[c])

    parts: List[np.ndarray] = []
    for classes in class_sets:
        chunks = []
        for c in classes:
            chunks.append(shards[c][cursor[c]])
            cursor[c] += 1
        parts.append(np.sort(np.concatenate(chunks)))
    return parts
