"""Sharded, lazily-materialized client state: the :class:`ClientStore` layer.

The eager per-client :class:`~repro.datasets.federated.ClientData` list
inside :class:`~repro.datasets.federated.FederatedDataset` costs O(total
devices) memory — fine for the paper's 30–1,000 device federations, a wall
at production scale.  A :class:`ClientStore` is the pluggable replacement:
a sequence-like object that answers two questions cheaply for *every*
client (``train_sizes`` / ``test_sizes`` — the aggregation-mass metadata
the server and evaluators need each round) and materializes any single
client's arrays *on access*.  Three implementations:

:class:`EagerClientStore`
    Wraps the historical in-memory list — the default, and bit-identical
    to the pre-store behavior.

:class:`MmapShardStore`
    Clients packed into ``.npy`` shard files with an on-disk index; a
    client access memory-maps its shard (bounded LRU of open shards) and
    returns zero-copy array views.  Memory cost is O(touched shards), not
    O(total devices), and the OS page cache does the rest.

:class:`OnDemandSyntheticStore`
    Regenerates any client's ``Synthetic(alpha, beta)`` data
    deterministically from per-client seed entropy
    (``SeedSequence([seed, salt, client_id])``), holding only a bounded
    LRU of live clients — a 10^6-device federation costs O(active cohort)
    memory.  Re-materializing an evicted client reproduces its arrays
    bit-for-bit, so LRU evictions can never change a training history.

All stores implement the read-only sequence protocol (``len``, ``[]``,
iteration), so everything that walks a ``FederatedDataset`` works
unchanged; lazy stores additionally advertise ``lazy = True`` so the
runtime avoids whole-federation materialization (e.g. the stacked
evaluation cache) unless explicitly asked for it.
"""

from __future__ import annotations

import abc
import json
import os
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from .federated import ClientData, train_test_split_client
from .partition import lognormal_sizes
from .synthetic import (
    NUM_CLASSES,
    NUM_FEATURES,
    _input_covariance_diag,
    _softmax_labels,
)

#: Entropy salts keeping the store's deterministic streams disjoint from
#: the trainer's ``(seed, round, client, occurrence)`` mini-batch entropy
#: and from each other.
_SIZES_SALT = 0x512E  # per-federation size draw
_CLIENT_SALT = 0xC11E  # per-client data regeneration
_GLOBAL_SALT = 0x610B  # shared (IID) model draw

#: Default bound on live clients kept by lazily-materializing stores.
DEFAULT_CACHE_CLIENTS = 256

_SHARD_STORE_FORMAT = "repro-shard-store-v1"


class _LRUCache:
    """A tiny bounded LRU mapping with hit/miss counters."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

    def info(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class ClientStore(abc.ABC):
    """Per-client data access with O(1)-per-client metadata.

    The contract (relied on by the trainer, the executors, and both
    evaluators — see DESIGN.md §13):

    * ``len(store)`` is the device count; ``store.get(k)`` returns client
      ``k``'s :class:`~repro.datasets.federated.ClientData` with
      ``client_id == k``.
    * ``get`` is **deterministic**: any two calls (in any process, before
      or after cache evictions) return arrays with identical contents.
    * ``train_sizes`` / ``test_sizes`` return per-client sample counts for
      the *whole* federation without materializing any client.
    * ``lazy`` is ``True`` when ``get`` may do real work (regeneration,
      I/O) — consumers then avoid whole-federation materialization on hot
      paths and should touch clients through a bounded working set.
    """

    #: Whether accessing a client may materialize data on demand.
    lazy: bool = False

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of devices in the store."""

    @abc.abstractmethod
    def get(self, client_id: int) -> ClientData:
        """Materialize (or fetch) one client's data."""

    @property
    @abc.abstractmethod
    def train_sizes(self) -> np.ndarray:
        """Per-client training sample counts ``n_k`` (no materialization)."""

    @property
    @abc.abstractmethod
    def test_sizes(self) -> np.ndarray:
        """Per-client held-out sample counts (no materialization)."""

    # Sequence protocol ------------------------------------------------- #
    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[ClientData, List[ClientData]]:
        if isinstance(index, slice):
            return [self.get(i) for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        return self.get(index)

    def __iter__(self) -> Iterator[ClientData]:
        for i in range(len(self)):
            yield self.get(i)

    def cache_info(self) -> Dict[str, int]:
        """Cache statistics for lazily-materializing stores (else empty)."""
        return {}


class EagerClientStore(ClientStore):
    """The historical behavior: every client held in memory up front."""

    lazy = False

    def __init__(self, clients: Sequence[ClientData]) -> None:
        if not clients:
            raise ValueError("an eager client store needs at least one client")
        self.clients: List[ClientData] = list(clients)
        self._train_sizes: Optional[np.ndarray] = None
        self._test_sizes: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.clients)

    def get(self, client_id: int) -> ClientData:
        return self.clients[client_id]

    @property
    def train_sizes(self) -> np.ndarray:
        if self._train_sizes is None:
            self._train_sizes = np.array(
                [c.num_train for c in self.clients]
            )
        return self._train_sizes

    @property
    def test_sizes(self) -> np.ndarray:
        if self._test_sizes is None:
            self._test_sizes = np.array([c.num_test for c in self.clients])
        return self._test_sizes


def _split_sizes(
    sizes: np.ndarray, test_fraction: float
) -> tuple:
    """Vectorized train/test counts matching ``train_test_split_client``.

    Mirrors the scalar logic exactly: ``n_test = int(n * test_fraction)``,
    clamped so at least one training sample survives.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    n_test = (sizes * test_fraction).astype(np.int64)
    n_test = np.where(sizes - n_test < 1, sizes - 1, n_test)
    return sizes - n_test, n_test


class OnDemandSyntheticStore(ClientStore):
    """``Synthetic(alpha, beta)`` clients regenerated on access.

    Unlike :func:`~repro.datasets.synthetic.make_synthetic` — which draws
    all devices from one sequential generator, so client ``k``'s data
    depends on every earlier client — each client here derives its *own*
    generator from ``SeedSequence([seed, salt, client_id])``.  Any client
    is therefore a pure function of ``(seed, client_id)`` and can be
    materialized independently, in any order, in any process, and after
    any number of cache evictions, always bit-identically.  (The two
    generation orders produce statistically identical but numerically
    different federations; this store is its own dataset family, not a
    lazy view of ``make_synthetic``.)

    Per-device sample counts come from a single vectorized heavy-tailed
    draw (``lognormal(4, 2) + 50``, capped) seeded independently of the
    per-client data entropy, so ``train_sizes`` costs one array draw for
    the whole federation.

    Parameters
    ----------
    alpha, beta:
        The paper's model/data heterogeneity variances.  ``iid=True``
        ignores them and shares one ``(W, b)`` and a zero-mean input law
        across devices (the ``Synthetic-IID`` analogue).
    num_devices:
        Federation size; 10^6 costs only the metadata arrays.
    seed:
        Root entropy for sizes, shared IID parameters, and every
        per-client stream.
    cache_clients:
        Bound on live materialized clients (LRU).
    """

    lazy = True

    def __init__(
        self,
        alpha: float = 0.0,
        beta: float = 0.0,
        num_devices: int = 1000,
        seed: int = 0,
        iid: bool = False,
        test_fraction: float = 0.2,
        size_cap: Optional[int] = 1000,
        min_samples: int = 50,
        cache_clients: int = DEFAULT_CACHE_CLIENTS,
    ) -> None:
        if alpha < 0 or beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if num_devices < 1:
            raise ValueError("num_devices must be at least 1")
        if not 0.0 <= test_fraction < 1.0:
            raise ValueError("test_fraction must be in [0, 1)")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.num_devices = int(num_devices)
        self.seed = int(seed)
        self.iid = bool(iid)
        self.test_fraction = float(test_fraction)
        self.size_cap = size_cap
        self.min_samples = int(min_samples)
        self.cache_clients = int(cache_clients)
        self._cov_diag = _input_covariance_diag()

        sizes_rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, _SIZES_SALT])
        )
        self._sizes = lognormal_sizes(
            sizes_rng, self.num_devices, minimum=min_samples, cap=size_cap
        ).astype(np.int64)
        self._train_sizes, self._test_sizes = _split_sizes(
            self._sizes, self.test_fraction
        )
        if self.iid:
            shared_rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, _GLOBAL_SALT])
            )
            self._shared_W = shared_rng.normal(
                0.0, 1.0, size=(NUM_FEATURES, NUM_CLASSES)
            )
            self._shared_b = shared_rng.normal(0.0, 1.0, size=NUM_CLASSES)
        else:
            self._shared_W = None
            self._shared_b = None
        self._cache = _LRUCache(self.cache_clients)

    def __len__(self) -> int:
        return self.num_devices

    @property
    def train_sizes(self) -> np.ndarray:
        return self._train_sizes

    @property
    def test_sizes(self) -> np.ndarray:
        return self._test_sizes

    def _materialize(self, client_id: int) -> ClientData:
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, _CLIENT_SALT, client_id])
        )
        n = int(self._sizes[client_id])
        if self.iid:
            W, b = self._shared_W, self._shared_b
            X = rng.normal(
                loc=0.0,
                scale=np.sqrt(self._cov_diag),
                size=(n, NUM_FEATURES),
            )
        else:
            u_k = rng.normal(0.0, np.sqrt(self.alpha)) if self.alpha > 0 else 0.0
            B_k = rng.normal(0.0, np.sqrt(self.beta)) if self.beta > 0 else 0.0
            W = rng.normal(u_k, 1.0, size=(NUM_FEATURES, NUM_CLASSES))
            b = rng.normal(u_k, 1.0, size=NUM_CLASSES)
            v_k = rng.normal(B_k, 1.0, size=NUM_FEATURES)
            X = rng.normal(
                loc=v_k,
                scale=np.sqrt(self._cov_diag),
                size=(n, NUM_FEATURES),
            )
        y = _softmax_labels(X, W, b)
        return train_test_split_client(
            client_id, X, y, rng, test_fraction=self.test_fraction
        )

    def get(self, client_id: int) -> ClientData:
        if not 0 <= client_id < self.num_devices:
            raise IndexError(f"client {client_id} out of range")
        cached = self._cache.get(client_id)
        if cached is not None:
            return cached
        data = self._materialize(client_id)
        self._cache.put(client_id, data)
        return data

    def cache_info(self) -> Dict[str, int]:
        return self._cache.info()

    # Pickling (parallel workers rebuild the store from its parameters) -- #
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cache = _LRUCache(self.cache_clients)


class MmapShardStore(ClientStore):
    """Clients packed into on-disk ``.npy`` shards, memory-mapped on access.

    Layout (one directory per store)::

        index.json                    scalars: format, counts, shapes
        offsets.npz                   per-client [start, stop) row ranges
        shard_00000.train_x.npy       concatenated train inputs
        shard_00000.train_y.npy       ... and so on, 4 files per shard

    A client access memory-maps its shard's four arrays (``np.load(...,
    mmap_mode="r")``, held in a bounded LRU of open shards) and returns
    zero-copy views — the OS pages data in as forward passes touch it, and
    evicting a shard handle only closes the *handle*; outstanding views
    keep their pages alive.  ``get`` is trivially deterministic (the bytes
    on disk never change), so cache evictions cannot affect histories.

    Build a store with :meth:`pack`, which streams clients from any
    source (an eager dataset, another store — including an on-demand
    synthetic store, which is how a 10^6-device federation reaches disk
    without ever being fully resident).
    """

    lazy = True

    def __init__(self, directory: str, max_open_shards: int = 8) -> None:
        self.directory = str(directory)
        index_path = os.path.join(self.directory, "index.json")
        if not os.path.exists(index_path):
            raise FileNotFoundError(
                f"{index_path} not found; build the store with "
                "MmapShardStore.pack(source, directory)"
            )
        with open(index_path) as fh:
            index = json.load(fh)
        if index.get("format") != _SHARD_STORE_FORMAT:
            raise ValueError(
                f"unrecognized shard store format {index.get('format')!r} "
                f"in {index_path}"
            )
        self.num_clients = int(index["num_clients"])
        self.clients_per_shard = int(index["clients_per_shard"])
        self.num_shards = int(index["num_shards"])
        self.meta = index
        offsets = np.load(os.path.join(self.directory, "offsets.npz"))
        self._train_start = offsets["train_start"]
        self._train_stop = offsets["train_stop"]
        self._test_start = offsets["test_start"]
        self._test_stop = offsets["test_stop"]
        self._train_sizes = (self._train_stop - self._train_start).astype(
            np.int64
        )
        self._test_sizes = (self._test_stop - self._test_start).astype(
            np.int64
        )
        self.max_open_shards = int(max_open_shards)
        self._shards = _LRUCache(self.max_open_shards)

    # Packing ----------------------------------------------------------- #
    @staticmethod
    def pack(
        source: Sequence[ClientData],
        directory: str,
        clients_per_shard: int = 1024,
        name: str = "",
        num_classes: Optional[int] = None,
        input_dim: Optional[int] = None,
    ) -> "MmapShardStore":
        """Stream ``source`` into a shard directory and open the store.

        ``source`` is anything yielding :class:`ClientData` in client-id
        order under iteration (a list, a ``FederatedDataset``, or another
        :class:`ClientStore`); memory use is bounded by one shard's
        clients at a time.
        """
        if clients_per_shard < 1:
            raise ValueError("clients_per_shard must be at least 1")
        os.makedirs(directory, exist_ok=True)
        num_clients = len(source)
        if num_clients == 0:
            raise ValueError("cannot pack an empty client source")

        train_start = np.zeros(num_clients, dtype=np.int64)
        train_stop = np.zeros(num_clients, dtype=np.int64)
        test_start = np.zeros(num_clients, dtype=np.int64)
        test_stop = np.zeros(num_clients, dtype=np.int64)

        def flush_shard(shard_idx: int, buffer: List[ClientData]) -> None:
            parts = {
                "train_x": [c.train_x for c in buffer],
                "train_y": [c.train_y for c in buffer],
                "test_x": [c.test_x for c in buffer],
                "test_y": [c.test_y for c in buffer],
            }
            for part, arrays in parts.items():
                nonempty = [np.asarray(a) for a in arrays if len(a)]
                if nonempty:
                    stacked = np.concatenate(nonempty)
                else:
                    # An all-empty test split still needs a typed, shaped
                    # array so views keep the right trailing dimensions.
                    template = np.asarray(
                        parts["train_x" if part.endswith("x") else "train_y"][0]
                    )
                    stacked = np.zeros(
                        (0,) + template.shape[1:], dtype=template.dtype
                    )
                np.save(
                    os.path.join(
                        directory, f"shard_{shard_idx:05d}.{part}.npy"
                    ),
                    stacked,
                )

        buffer: List[ClientData] = []
        shard_idx = 0
        train_cursor = 0
        test_cursor = 0
        for cid, client in enumerate(source):
            if client.client_id != cid:
                raise ValueError(
                    f"source client at position {cid} reports id "
                    f"{client.client_id}; pack requires id-ordered sources"
                )
            train_start[cid] = train_cursor
            train_cursor += client.num_train
            train_stop[cid] = train_cursor
            test_start[cid] = test_cursor
            test_cursor += client.num_test
            test_stop[cid] = test_cursor
            buffer.append(client)
            if len(buffer) == clients_per_shard:
                flush_shard(shard_idx, buffer)
                buffer = []
                shard_idx += 1
                train_cursor = 0
                test_cursor = 0
        if buffer:
            flush_shard(shard_idx, buffer)
            shard_idx += 1

        np.savez(
            os.path.join(directory, "offsets.npz"),
            train_start=train_start,
            train_stop=train_stop,
            test_start=test_start,
            test_stop=test_stop,
        )
        index = {
            "format": _SHARD_STORE_FORMAT,
            "num_clients": num_clients,
            "clients_per_shard": clients_per_shard,
            "num_shards": shard_idx,
            "name": name,
            "num_classes": num_classes,
            "input_dim": input_dim,
        }
        with open(os.path.join(directory, "index.json"), "w") as fh:
            json.dump(index, fh, indent=2)
            fh.write("\n")
        return MmapShardStore(directory)

    # Access ------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_clients

    @property
    def train_sizes(self) -> np.ndarray:
        return self._train_sizes

    @property
    def test_sizes(self) -> np.ndarray:
        return self._test_sizes

    def _shard(self, shard_idx: int) -> Dict[str, np.ndarray]:
        arrays = self._shards.get(shard_idx)
        if arrays is None:
            arrays = {
                part: np.load(
                    os.path.join(
                        self.directory, f"shard_{shard_idx:05d}.{part}.npy"
                    ),
                    mmap_mode="r",
                )
                for part in ("train_x", "train_y", "test_x", "test_y")
            }
            self._shards.put(shard_idx, arrays)
        return arrays

    def get(self, client_id: int) -> ClientData:
        if not 0 <= client_id < self.num_clients:
            raise IndexError(f"client {client_id} out of range")
        shard = self._shard(client_id // self.clients_per_shard)
        return ClientData(
            client_id=client_id,
            train_x=shard["train_x"][
                self._train_start[client_id] : self._train_stop[client_id]
            ],
            train_y=shard["train_y"][
                self._train_start[client_id] : self._train_stop[client_id]
            ],
            test_x=shard["test_x"][
                self._test_start[client_id] : self._test_stop[client_id]
            ],
            test_y=shard["test_y"][
                self._test_start[client_id] : self._test_stop[client_id]
            ],
        )

    def cache_info(self) -> Dict[str, int]:
        return self._shards.info()

    # Pickling (workers reopen mmaps against the same directory) --------- #
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_shards"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._shards = _LRUCache(self.max_open_shards)


def resolve_store(
    clients_or_store: Union[ClientStore, Sequence[ClientData]]
) -> ClientStore:
    """Coerce a raw client sequence to a store (stores pass through)."""
    if isinstance(clients_or_store, ClientStore):
        return clients_or_store
    return EagerClientStore(clients_or_store)


def make_synthetic_ondemand(
    alpha: float,
    beta: float,
    num_devices: int,
    seed: int = 0,
    iid: bool = False,
    test_fraction: float = 0.2,
    size_cap: Optional[int] = 1000,
    min_samples: int = 50,
    cache_clients: int = DEFAULT_CACHE_CLIENTS,
    name: Optional[str] = None,
):
    """A ``FederatedDataset`` over an :class:`OnDemandSyntheticStore`.

    The O(active cohort) counterpart of
    :func:`~repro.datasets.synthetic.make_synthetic` for large
    ``num_devices`` — see the class docstring for how it differs
    numerically from the eager generator.
    """
    from .federated import FederatedDataset  # local: avoid import cycles

    store = OnDemandSyntheticStore(
        alpha=alpha,
        beta=beta,
        num_devices=num_devices,
        seed=seed,
        iid=iid,
        test_fraction=test_fraction,
        size_cap=size_cap,
        min_samples=min_samples,
        cache_clients=cache_clients,
    )
    label = name or (
        "Synthetic-OD-IID" if iid else f"Synthetic-OD({alpha:g},{beta:g})"
    )
    dataset = FederatedDataset.from_store(
        name=label,
        store=store,
        num_classes=NUM_CLASSES,
        input_dim=NUM_FEATURES,
    )
    # Every client is a pure function of (seed, client_id), so the whole
    # federation reconstructs from these scalars (run-ledger recipe).
    dataset.recipe = {
        "builder": "make_synthetic_ondemand",
        "alpha": float(alpha),
        "beta": float(beta),
        "num_devices": int(num_devices),
        "seed": int(seed),
        "iid": bool(iid),
        "test_fraction": float(test_fraction),
        "size_cap": size_cap,
        "min_samples": int(min_samples),
        "cache_clients": int(cache_clients),
        "name": name,
    }
    return dataset
