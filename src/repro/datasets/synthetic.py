"""The paper's synthetic datasets: Synthetic(alpha, beta) and Synthetic-IID.

Generation follows Section 5.1 / Appendix C.1 exactly:

* For device ``k`` the labelling model is ``y = argmax(softmax(W_k x + b_k))``
  with ``W_k ~ N(u_k, 1)``, ``b_k ~ N(u_k, 1)`` and ``u_k ~ N(0, alpha)``;
  ``alpha`` controls how much *local models* differ across devices.
* Local inputs are ``x_k ~ N(v_k, Sigma)`` with diagonal
  ``Sigma_jj = j^{-1.2}``, each element of ``v_k`` drawn from
  ``N(B_k, 1)`` with ``B_k ~ N(0, beta)``; ``beta`` controls how much
  *local data* differs across devices.
* ``Synthetic-IID`` shares a single ``W, b ~ N(0, 1)`` across all devices
  and draws every ``x`` from the same zero-mean ``N(0, Sigma)``.
* 30 devices; samples per device follow a heavy-tailed law
  (``lognormal(4, 2) + 50`` in the reference implementation).

The three heterogeneous settings studied in the paper are
``(alpha, beta) in {(0, 0), (0.5, 0.5), (1, 1)}``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .federated import ClientData, FederatedDataset, train_test_split_client
from .partition import lognormal_sizes

NUM_FEATURES = 60
NUM_CLASSES = 10


def _input_covariance_diag(dim: int = NUM_FEATURES) -> np.ndarray:
    """The paper's diagonal input covariance ``Sigma_jj = j^{-1.2}``."""
    return np.arange(1, dim + 1, dtype=np.float64) ** (-1.2)


def _softmax_labels(X: np.ndarray, W: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Labels ``argmax softmax(W x + b)`` (argmax of scores suffices)."""
    return (X @ W + b).argmax(axis=1)


def make_synthetic(
    alpha: float,
    beta: float,
    num_devices: int = 30,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    test_fraction: float = 0.2,
    size_cap: Optional[int] = 1000,
    min_samples: int = 50,
    name: Optional[str] = None,
) -> FederatedDataset:
    """Generate ``Synthetic(alpha, beta)``.

    Parameters
    ----------
    alpha:
        Variance of the per-device model-mean ``u_k`` — model heterogeneity.
    beta:
        Variance of the per-device input-mean driver ``B_k`` — data
        heterogeneity.
    num_devices:
        Number of devices (30 in the paper).
    rng, seed:
        Randomness; ``rng`` wins if both are given.
    test_fraction:
        Per-device held-out fraction (the paper uses 20%).
    size_cap:
        Upper bound on per-device samples; keeps the heavy-tailed draw
        tractable on one CPU.  Set ``None`` for the unbounded reference
        behaviour.
    min_samples:
        Added to every size draw (50 in the reference implementation).
    name:
        Dataset name override.

    Returns
    -------
    FederatedDataset
    """
    if alpha < 0 or beta < 0:
        raise ValueError("alpha and beta must be non-negative")
    # A caller-owned rng makes the output depend on that rng's prior
    # consumption — only the pure-seed path gets a reconstruction recipe.
    seeded = rng is None
    rng = rng if rng is not None else np.random.default_rng(seed)
    sizes = lognormal_sizes(
        rng, num_devices, minimum=min_samples, cap=size_cap
    )
    cov_diag = _input_covariance_diag()

    clients = []
    for k in range(num_devices):
        u_k = rng.normal(0.0, np.sqrt(alpha)) if alpha > 0 else 0.0
        B_k = rng.normal(0.0, np.sqrt(beta)) if beta > 0 else 0.0
        W_k = rng.normal(u_k, 1.0, size=(NUM_FEATURES, NUM_CLASSES))
        b_k = rng.normal(u_k, 1.0, size=NUM_CLASSES)
        v_k = rng.normal(B_k, 1.0, size=NUM_FEATURES)
        X = rng.normal(
            loc=v_k, scale=np.sqrt(cov_diag), size=(sizes[k], NUM_FEATURES)
        )
        y = _softmax_labels(X, W_k, b_k)
        clients.append(
            train_test_split_client(k, X, y, rng, test_fraction=test_fraction)
        )

    recipe = None
    if seeded:
        recipe = {
            "builder": "make_synthetic",
            "alpha": float(alpha),
            "beta": float(beta),
            "num_devices": int(num_devices),
            "seed": int(seed),
            "test_fraction": float(test_fraction),
            "size_cap": size_cap,
            "min_samples": int(min_samples),
            "name": name,
        }
    return FederatedDataset(
        name=name or f"Synthetic({alpha:g},{beta:g})",
        clients=clients,
        num_classes=NUM_CLASSES,
        input_dim=NUM_FEATURES,
        recipe=recipe,
    )


def make_synthetic_iid(
    num_devices: int = 30,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    test_fraction: float = 0.2,
    size_cap: Optional[int] = 1000,
    min_samples: int = 50,
) -> FederatedDataset:
    """Generate ``Synthetic-IID``: one shared model, one shared input law."""
    seeded = rng is None
    rng = rng if rng is not None else np.random.default_rng(seed)
    sizes = lognormal_sizes(rng, num_devices, minimum=min_samples, cap=size_cap)
    cov_diag = _input_covariance_diag()
    W = rng.normal(0.0, 1.0, size=(NUM_FEATURES, NUM_CLASSES))
    b = rng.normal(0.0, 1.0, size=NUM_CLASSES)

    clients = []
    for k in range(num_devices):
        X = rng.normal(
            loc=0.0, scale=np.sqrt(cov_diag), size=(sizes[k], NUM_FEATURES)
        )
        y = _softmax_labels(X, W, b)
        clients.append(
            train_test_split_client(k, X, y, rng, test_fraction=test_fraction)
        )

    recipe = None
    if seeded:
        recipe = {
            "builder": "make_synthetic_iid",
            "num_devices": int(num_devices),
            "seed": int(seed),
            "test_fraction": float(test_fraction),
            "size_cap": size_cap,
            "min_samples": int(min_samples),
        }
    return FederatedDataset(
        name="Synthetic-IID",
        clients=clients,
        num_classes=NUM_CLASSES,
        input_dim=NUM_FEATURES,
        recipe=recipe,
    )


def synthetic_suite(
    seed: int = 0,
    num_devices: int = 30,
    size_cap: Optional[int] = 1000,
) -> dict:
    """The four synthetic datasets of Figure 2, keyed by display name."""
    return {
        "Synthetic-IID": make_synthetic_iid(
            num_devices=num_devices, seed=seed, size_cap=size_cap
        ),
        "Synthetic(0,0)": make_synthetic(
            0.0, 0.0, num_devices=num_devices, seed=seed + 1, size_cap=size_cap
        ),
        "Synthetic(0.5,0.5)": make_synthetic(
            0.5, 0.5, num_devices=num_devices, seed=seed + 2, size_cap=size_cap
        ),
        "Synthetic(1,1)": make_synthetic(
            1.0, 1.0, num_devices=num_devices, seed=seed + 3, size_cap=size_cap
        ),
    }
