"""LEAF-format dataset interchange.

The paper's datasets come from LEAF (Caldas et al., 2018), whose JSON
format the reference FedProx implementation consumes::

    {
      "users": ["user0", "user1", ...],
      "num_samples": [n0, n1, ...],
      "user_data": {"user0": {"x": [[...], ...], "y": [...]}, ...}
    }

with separate train/test files.  These helpers let this package exchange
federations with real LEAF data: :func:`load_leaf` builds a
:class:`FederatedDataset` from a LEAF train/test JSON pair, and
:func:`save_leaf` exports any federation back to the format (so our
synthetic stand-ins can be fed to other LEAF-based systems).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from .federated import ClientData, FederatedDataset

PathLike = Union[str, Path]


def _validate_leaf_payload(payload: dict, path: Path) -> None:
    for key in ("users", "num_samples", "user_data"):
        if key not in payload:
            raise ValueError(f"{path}: missing LEAF key {key!r}")
    if len(payload["users"]) != len(payload["num_samples"]):
        raise ValueError(f"{path}: users/num_samples length mismatch")
    for user in payload["users"]:
        if user not in payload["user_data"]:
            raise ValueError(f"{path}: user {user!r} missing from user_data")
        entry = payload["user_data"][user]
        if "x" not in entry or "y" not in entry:
            raise ValueError(f"{path}: user {user!r} entry missing x/y")
        if len(entry["x"]) != len(entry["y"]):
            raise ValueError(f"{path}: user {user!r} has x/y length mismatch")


def load_leaf(
    train_path: PathLike,
    test_path: Optional[PathLike] = None,
    name: str = "leaf",
    x_dtype: type = np.float64,
) -> FederatedDataset:
    """Load a federation from LEAF train (and optional test) JSON files.

    Users present only in the train file get empty test sets.  Labels are
    coerced to integers; the class count is inferred from the maximum
    label across both splits.

    Parameters
    ----------
    train_path, test_path:
        LEAF JSON files.
    name:
        Dataset display name.
    x_dtype:
        dtype for feature arrays (use an integer dtype for token data).
    """
    train_path = Path(train_path)
    train_payload = json.loads(train_path.read_text())
    _validate_leaf_payload(train_payload, train_path)

    test_payload: dict = {"users": [], "user_data": {}}
    if test_path is not None:
        test_path = Path(test_path)
        test_payload = json.loads(test_path.read_text())
        _validate_leaf_payload(test_payload, test_path)

    clients: List[ClientData] = []
    num_classes = 0
    for client_id, user in enumerate(train_payload["users"]):
        train_entry = train_payload["user_data"][user]
        train_x = np.asarray(train_entry["x"], dtype=x_dtype)
        train_y = np.asarray(train_entry["y"], dtype=np.int64)
        if user in test_payload["user_data"]:
            test_entry = test_payload["user_data"][user]
            test_x = np.asarray(test_entry["x"], dtype=x_dtype)
            test_y = np.asarray(test_entry["y"], dtype=np.int64)
        else:
            test_x = train_x[:0]
            test_y = train_y[:0]
        if train_y.size:
            num_classes = max(num_classes, int(train_y.max()) + 1)
        if test_y.size:
            num_classes = max(num_classes, int(test_y.max()) + 1)
        clients.append(
            ClientData(
                client_id=client_id,
                train_x=train_x,
                train_y=train_y,
                test_x=test_x,
                test_y=test_y,
            )
        )
    input_dim = clients[0].train_x.shape[1] if clients[0].train_x.ndim > 1 else None
    return FederatedDataset(
        name=name, clients=clients, num_classes=num_classes, input_dim=input_dim
    )


def save_leaf(
    dataset: FederatedDataset,
    train_path: PathLike,
    test_path: Optional[PathLike] = None,
) -> None:
    """Export a federation to LEAF train/test JSON files.

    Device ``k`` becomes user ``"f_{k:05d}"`` (LEAF's naming convention).
    """
    def payload(split: str) -> dict:
        users = []
        num_samples = []
        user_data = {}
        for client in dataset:
            user = f"f_{client.client_id:05d}"
            if split == "train":
                x, y = client.train_x, client.train_y
            else:
                x, y = client.test_x, client.test_y
            users.append(user)
            num_samples.append(int(len(y)))
            user_data[user] = {
                "x": np.asarray(x).tolist(),
                "y": np.asarray(y).tolist(),
            }
        return {"users": users, "num_samples": num_samples, "user_data": user_data}

    train_path = Path(train_path)
    train_path.parent.mkdir(parents=True, exist_ok=True)
    train_path.write_text(json.dumps(payload("train")))
    if test_path is not None:
        test_path = Path(test_path)
        test_path.parent.mkdir(parents=True, exist_ok=True)
        test_path.write_text(json.dumps(payload("test")))
