"""Synthetic text federations (Shakespeare / Sent140 stand-ins).

Offline we cannot ship *The Complete Works of William Shakespeare* or the
Sentiment140 tweets, so these generators synthesize the two text workloads
while preserving what drives the paper's results: per-device distribution
shift over sequences (see DESIGN.md §4).

* :func:`make_shakespeare_like` — next-character prediction.  Each device
  ("speaking role") emits text from an order-1 Markov chain whose transition
  matrix mixes a shared "language" component with a device-specific
  "dialect" component; the mixing weight is the heterogeneity knob.
* :func:`make_sent140_like` — binary sentiment classification.  Each device
  ("twitter account") has its own label prior and its own preference over a
  neutral vocabulary; positive/negative lexicon words correlate with the
  label.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .federated import ClientData, FederatedDataset, train_test_split_client


def _random_stochastic_matrix(
    rng: np.random.Generator, size: int, concentration: float = 0.3
) -> np.ndarray:
    """Row-stochastic matrix with Dirichlet rows (sparse-ish transitions)."""
    mat = rng.dirichlet(np.full(size, concentration), size=size)
    return mat


def _sample_markov_stream(
    rng: np.random.Generator, transitions: np.ndarray, length: int
) -> np.ndarray:
    """Sample a character stream from an order-1 Markov chain.

    Uses inverse-CDF sampling against precomputed cumulative rows so the
    per-step cost is one ``searchsorted``.
    """
    vocab = transitions.shape[0]
    cumulative = np.cumsum(transitions, axis=1)
    stream = np.empty(length, dtype=np.int64)
    state = int(rng.integers(vocab))
    uniforms = rng.random(length)
    for t in range(length):
        state = int(np.searchsorted(cumulative[state], uniforms[t]))
        state = min(state, vocab - 1)  # guard against cumsum rounding
        stream[t] = state
    return stream


def make_shakespeare_like(
    num_devices: int = 24,
    vocab_size: int = 80,
    seq_len: int = 20,
    samples_per_device_mean: float = 60.0,
    dialect_weight: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    test_fraction: float = 0.2,
    name: str = "Shakespeare-like",
) -> FederatedDataset:
    """Next-character-prediction federation from per-device Markov sources.

    Each sample is a window of ``seq_len`` character ids labelled with the
    character that follows it (windows stride 1 over the device's stream,
    matching the LEAF preprocessing).

    Parameters
    ----------
    num_devices:
        Number of speaking roles (143 at paper scale; default reduced for
        CPU-only LSTM training).
    vocab_size:
        Character vocabulary (80 in the paper).
    seq_len:
        Context window (80 in the paper; default reduced).
    samples_per_device_mean:
        Mean of the heavy-tailed per-device sample counts (paper mean is
        3,616 with stdev 6,808; default reduced).
    dialect_weight:
        Mixing weight of the device-specific transition matrix in
        ``T_k = (1 - w) T_shared + w T_k^dev``.  0 gives IID devices.
    """
    if not 0.0 <= dialect_weight <= 1.0:
        raise ValueError("dialect_weight must be in [0, 1]")
    seeded = rng is None
    rng = rng if rng is not None else np.random.default_rng(seed)
    shared = _random_stochastic_matrix(rng, vocab_size)

    # Heavy-tailed sizes scaled to the requested mean, floored for the split.
    raw = rng.lognormal(0.0, 0.8, size=num_devices)
    sizes = np.maximum((raw / raw.mean() * samples_per_device_mean).astype(int), 10)

    clients: List[ClientData] = []
    for k in range(num_devices):
        dialect = _random_stochastic_matrix(rng, vocab_size)
        transitions = (1.0 - dialect_weight) * shared + dialect_weight * dialect
        stream = _sample_markov_stream(rng, transitions, sizes[k] + seq_len)
        windows = np.lib.stride_tricks.sliding_window_view(stream, seq_len)[
            : sizes[k]
        ].copy()
        labels = stream[seq_len : seq_len + sizes[k]].copy()
        clients.append(
            train_test_split_client(k, windows, labels, rng, test_fraction=test_fraction)
        )

    recipe = None
    if seeded:
        recipe = {
            "builder": "make_shakespeare_like",
            "num_devices": int(num_devices),
            "vocab_size": int(vocab_size),
            "seq_len": int(seq_len),
            "samples_per_device_mean": float(samples_per_device_mean),
            "dialect_weight": float(dialect_weight),
            "seed": int(seed),
            "test_fraction": float(test_fraction),
            "name": name,
        }
    return FederatedDataset(
        name=name, clients=clients, num_classes=vocab_size, input_dim=seq_len,
        recipe=recipe,
    )


def make_sent140_like(
    num_devices: int = 30,
    vocab_size: int = 400,
    seq_len: int = 25,
    samples_per_device_mean: float = 53.0,
    samples_per_device_stdev: float = 32.0,
    sentiment_strength: float = 0.5,
    label_prior_concentration: float = 0.7,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    test_fraction: float = 0.2,
    name: str = "Sent140-like",
) -> FederatedDataset:
    """Binary sentiment federation with per-account vocabulary & label skew.

    The first eighth of the vocabulary is the positive lexicon, the second
    eighth the negative lexicon, and the rest is neutral.  Each token of a
    sample is, with probability ``sentiment_strength``, drawn from the
    lexicon matching the label; otherwise it is drawn from the device's own
    Dirichlet preference over neutral words.

    Parameters
    ----------
    num_devices:
        Number of accounts (772 at paper scale; default reduced).
    vocab_size, seq_len:
        Token vocabulary and fixed sequence length (25 in the paper).
    samples_per_device_mean, samples_per_device_stdev:
        Gaussian (clipped) per-device sizes; paper reports mean 53, stdev 32.
    sentiment_strength:
        How strongly tokens correlate with the label; lower is harder.
    label_prior_concentration:
        Beta(c, c) prior on each device's positive-label rate; small values
        give strongly skewed devices (statistical heterogeneity).
    """
    if vocab_size < 16:
        raise ValueError("vocab_size too small to carve out sentiment lexicons")
    seeded = rng is None
    rng = rng if rng is not None else np.random.default_rng(seed)

    eighth = vocab_size // 8
    pos_lexicon = np.arange(0, eighth)
    neg_lexicon = np.arange(eighth, 2 * eighth)
    neutral = np.arange(2 * eighth, vocab_size)

    sizes = np.maximum(
        rng.normal(samples_per_device_mean, samples_per_device_stdev, num_devices)
        .round()
        .astype(int),
        10,
    )

    clients: List[ClientData] = []
    for k in range(num_devices):
        positive_rate = rng.beta(label_prior_concentration, label_prior_concentration)
        neutral_pref = rng.dirichlet(np.full(len(neutral), 0.3))
        y = (rng.random(sizes[k]) < positive_rate).astype(np.int64)

        use_lexicon = rng.random((sizes[k], seq_len)) < sentiment_strength
        lexicon_pos = rng.choice(pos_lexicon, size=(sizes[k], seq_len))
        lexicon_neg = rng.choice(neg_lexicon, size=(sizes[k], seq_len))
        lexicon_tokens = np.where(y[:, None] == 1, lexicon_pos, lexicon_neg)
        neutral_tokens = rng.choice(neutral, size=(sizes[k], seq_len), p=neutral_pref)
        X = np.where(use_lexicon, lexicon_tokens, neutral_tokens)

        clients.append(
            train_test_split_client(k, X, y, rng, test_fraction=test_fraction)
        )

    recipe = None
    if seeded:
        recipe = {
            "builder": "make_sent140_like",
            "num_devices": int(num_devices),
            "vocab_size": int(vocab_size),
            "seq_len": int(seq_len),
            "samples_per_device_mean": float(samples_per_device_mean),
            "samples_per_device_stdev": float(samples_per_device_stdev),
            "sentiment_strength": float(sentiment_strength),
            "label_prior_concentration": float(label_prior_concentration),
            "seed": int(seed),
            "test_fraction": float(test_fraction),
            "name": name,
        }
    return FederatedDataset(
        name=name, clients=clients, num_classes=2, input_dim=seq_len,
        recipe=recipe,
    )
