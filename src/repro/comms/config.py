"""Comms configuration: the ``comms:`` spec grammar and sub-config.

:class:`CommsConfig` is the trainer's sixth concern group: which update
codec (if any) compresses client uploads, its parameters, and whether
error feedback is enabled.  Like the engine section, the config and its
spec string are lossless inverses — ``"comms:codec=qsgd,bits=8,ef=true"``
parses to a config whose :meth:`~CommsConfig.spec` emits the same string
— which is what lets the run ledger serialize a compressed run and
``repro.trace replay`` rebuild it bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from .codecs import CastCodec, Codec, IdentityCodec, QSGDCodec, TopKCodec

#: Accepted codec names.  ``"dense"`` means compression is disabled — the
#: historical uncompressed path, with no comms accounting at all.
CODEC_NAMES = ("dense", "identity", "fp16", "fp32", "qsgd", "topk")


def _parse_bool(value: str) -> bool:
    lowered = value.lower()
    if lowered in ("true", "1", "yes", "on"):
        return True
    if lowered in ("false", "0", "no", "off"):
        return False
    raise ValueError(f"expected a boolean, got {value!r}")


#: comms spec keys -> (CommsConfig field, value parser, default), in
#: canonical emission order.
_COMMS_SPEC_KEYS = (
    ("codec", "codec", str, "dense"),
    ("bits", "bits", int, 8),
    ("k", "k", int, 64),
    ("ef", "ef", _parse_bool, False),
)


def parse_comms_spec(spec: str) -> Dict[str, Any]:
    """Parse a ``comms:`` spec string into :class:`CommsConfig` kwargs.

    Grammar: an optional ``comms:`` prefix followed by comma-separated
    ``key=value`` pairs (keys: ``codec``, ``bits``, ``k``, ``ef``); a
    bare leading token names the codec, so ``"qsgd"`` and
    ``"comms:codec=qsgd"`` are equivalent.  Every rejection is a labeled
    ``ValueError`` naming the valid keys and codecs.
    """
    if not isinstance(spec, str):
        raise TypeError(
            f"comms spec must be a string, got {type(spec).__name__}"
        )
    body = spec
    if body == "comms":
        body = ""
    elif body.startswith("comms:"):
        body = body[len("comms:"):]
    parsers = {key: (name, parse) for key, name, parse, _ in _COMMS_SPEC_KEYS}
    kwargs: Dict[str, Any] = {}
    for position, item in enumerate(p for p in body.split(",") if p.strip()):
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep:
            if position == 0:
                # Bare codec shorthand: "qsgd" == "codec=qsgd".
                key, value = "codec", key
            else:
                raise ValueError(
                    f"malformed comms option {item!r} in spec {spec!r}; "
                    "expected comma-separated key=value pairs, e.g. "
                    '"comms:codec=qsgd,bits=8,ef=true"'
                )
        if key not in parsers:
            raise ValueError(
                f"unknown comms option {key!r} in spec {spec!r}; valid "
                f"keys: {tuple(parsers)}"
            )
        name, parse = parsers[key]
        if name in kwargs:
            raise ValueError(
                f"duplicate comms option {key!r} in spec {spec!r}"
            )
        try:
            kwargs[name] = parse(value.strip())
        except ValueError:
            raise ValueError(
                f"bad value {value.strip()!r} for comms option {key!r} in "
                f"spec {spec!r}"
            ) from None
    codec = kwargs.get("codec")
    if codec is not None and codec not in CODEC_NAMES:
        raise ValueError(
            f"unknown codec {codec!r} in spec {spec!r}; valid codecs: "
            f"{CODEC_NAMES}"
        )
    return kwargs


@dataclass(frozen=True)
class CommsConfig:
    """Update-compression configuration for one training run.

    Attributes
    ----------
    codec:
        Codec name (see :data:`CODEC_NAMES`); ``"dense"`` (default)
        disables compression entirely, reproducing the historical
        uncompressed path byte-for-byte with zero overhead.
    bits:
        Quantization bit width for the ``qsgd`` codec (1-16).
    k:
        Kept-coordinate count for the ``topk`` codec.
    ef:
        Enable per-client error-feedback residuals: compression error is
        remembered and added back into the client's next transmitted
        delta.  Ignored for lossless codecs (the residual is identically
        zero).  Error feedback requires the server-side encode path, so
        it trades the lean IPC fast path for accuracy — see
        :class:`~repro.comms.manager.CommsManager`.
    """

    codec: str = "dense"
    bits: int = 8
    k: int = 64
    ef: bool = False

    def __post_init__(self) -> None:
        if self.codec not in CODEC_NAMES:
            raise ValueError(
                f"unknown codec {self.codec!r}; valid codecs: {CODEC_NAMES} "
                '— e.g. "comms:codec=qsgd,bits=8,ef=true"'
            )
        if not 1 <= int(self.bits) <= 16:
            raise ValueError(
                f"qsgd bit width must be in [1, 16], got {self.bits}"
            )
        if int(self.k) < 1:
            raise ValueError(f"topk k must be >= 1, got {self.k}")

    @property
    def enabled(self) -> bool:
        """Whether any codec (even identity) is active."""
        return self.codec != "dense"

    def spec(self) -> str:
        """The canonical ``comms:`` spec string describing this config."""
        parts = []
        for key, name, _, default in _COMMS_SPEC_KEYS:
            value = getattr(self, name)
            if value != default:
                rendered = str(value).lower() if isinstance(value, bool) else value
                parts.append(f"{key}={rendered}")
        return "comms:" + ",".join(parts) if parts else "comms"

    @classmethod
    def from_spec(cls, spec: str) -> "CommsConfig":
        """Parse a comms spec string into a :class:`CommsConfig`."""
        return cls(**parse_comms_spec(spec))

    @classmethod
    def resolve(cls, value: Any) -> "CommsConfig":
        """Coerce any accepted ``comms=`` value to a config.

        ``None`` → compression disabled; a spec string is parsed; a
        :class:`CommsConfig` passes through.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.from_spec(value)
        raise TypeError(
            "comms must be a CommsConfig, a comms spec string (e.g. "
            '"comms:codec=qsgd,bits=8,ef=true"), or None; got '
            f"{type(value).__name__}"
        )

    def build_codec(self) -> Optional[Codec]:
        """The codec instance this config describes; ``None`` when dense."""
        if self.codec == "dense":
            return None
        if self.codec == "identity":
            return IdentityCodec()
        if self.codec in ("fp16", "fp32"):
            return CastCodec(dtype=self.codec)
        if self.codec == "qsgd":
            return QSGDCodec(bits=int(self.bits))
        return TopKCodec(k=int(self.k))

    def to_dict(self) -> Dict[str, Any]:
        """Scalar description of this comms configuration."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "CommsConfig":
        return cls(**dict(spec))
