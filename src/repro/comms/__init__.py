"""Communication-efficient update codecs and wire-byte accounting.

The comms subsystem compresses client model updates on the uplink — the
one-per-device-per-round transfer the paper treats as the scarce resource
— and threads exact byte accounting through every executor, the async
engine's simulated clock, and the telemetry ledger.

* :mod:`repro.comms.codecs` — the codecs themselves: ``identity``
  (bit-exact passthrough), ``fp16``/``fp32`` casts, seeded QSGD-style
  stochastic quantization, and top-k sparsification, each encoding to a
  :class:`~repro.comms.codecs.WirePayload`.
* :mod:`repro.comms.config` — :class:`~repro.comms.config.CommsConfig`
  and the ``comms:codec=qsgd,bits=8,ef=true`` spec grammar.
* :mod:`repro.comms.manager` — :class:`~repro.comms.manager.CommsManager`:
  payload round-trips inside every executor, per-client error-feedback
  residuals, and ``comms.bytes_up`` / ``comms.bytes_down`` /
  ``comms.compression_ratio`` telemetry.

Enable compression by passing ``comms=`` to the trainer::

    FederatedTrainer(dataset, model, solver,
                     comms="comms:codec=qsgd,bits=8,ef=true")
"""

from .codecs import (
    COMMS_SALT,
    DENSE_ITEMSIZE,
    CastCodec,
    Codec,
    IdentityCodec,
    QSGDCodec,
    TopKCodec,
    WirePayload,
    codec_rng,
)
from .config import CODEC_NAMES, CommsConfig, parse_comms_spec
from .manager import CommsManager

__all__ = [
    "CODEC_NAMES",
    "COMMS_SALT",
    "DENSE_ITEMSIZE",
    "CastCodec",
    "Codec",
    "CommsConfig",
    "CommsManager",
    "IdentityCodec",
    "QSGDCodec",
    "TopKCodec",
    "WirePayload",
    "codec_rng",
    "parse_comms_spec",
]
