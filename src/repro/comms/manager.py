"""Server-side comms orchestration: payload round-trips, error feedback,
and wire-byte accounting.

One :class:`CommsManager` lives on the trainer and is shared with its
round executor (:meth:`~repro.runtime.executor.RoundExecutor.configure_comms`).
Every executor funnels each batch of finished updates through
:meth:`CommsManager.finalize_round` *before* returning them from
``run_local_solves`` — so the fault manager's finiteness quarantine, the
aggregation step, and every downstream consumer only ever see decoded
updates, on every engine.

Two encode placements
---------------------
*Device-side* (``ef=false``): the codec travels on the
:class:`~repro.runtime.executor.LocalTask` and
:func:`~repro.runtime.executor.solve_with_timings` encodes where the
solve ran.  On :class:`~repro.runtime.parallel.ParallelExecutor` this is
the lean IPC fast path — the update crosses the process boundary as the
encoded payload's single contiguous ``bytes`` buffer instead of a dense
float64 array — and the server merely decodes.

*Server-side* (``ef=true``, and any executor whose updates come back
dense, e.g. the cohort kernels): finalize encodes and immediately
decodes.  Error feedback forces this placement: the residual is shared
mutable per-client state that cannot live in worker processes without
shipping it back and forth — which would cost more bytes than it saves.

Both placements produce identical decoded updates for the same tasks
(encoding is a pure function of ``(update, w_global, entropy)``), so
histories agree across all four engines for any codec.

Error-feedback semantics
------------------------
With ``ef=true`` the transmitted delta is ``delta + residual`` and the
new residual is what the codec dropped:
``residual' = (delta + residual) - decode(encode(delta + residual))``.
Residuals update at transmission time — a later policy drop or
quarantine does not roll them back (the device did transmit) — and a
non-finite residual (a corruption fault poisoning the delta) resets to
empty rather than poisoning every subsequent round of that client.
Storage is one float64 vector per client that has actually transmitted,
O(participating clients), not O(federation).

Byte-accounting model
---------------------
``bytes_up`` counts each delivered payload's exact wire size;
``bytes_down`` counts one dense model broadcast (``8 * n_params``) per
*dispatched* task — the downlink ships the uncompressed global model
regardless of codec.  ``comms.compression_ratio`` is the round's dense
uplink cost over its actual uplink bytes.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from .codecs import DENSE_ITEMSIZE, Codec
from .config import CommsConfig

if TYPE_CHECKING:  # avoid circular imports with repro.core / repro.runtime
    from ..core.client import ClientUpdate
    from ..runtime.executor import LocalTask


class CommsManager:
    """Round-trips update payloads and accounts their wire bytes."""

    def __init__(self, config: CommsConfig) -> None:
        self.config = config
        self.codec: Optional[Codec] = config.build_codec()
        #: Error feedback is only meaningful for lossy codecs: a lossless
        #: round-trip leaves a zero residual, so identity runs keep the
        #: device-side fast path (and bit-exactness) even with ef=true.
        self.ef: bool = (
            bool(config.ef)
            and self.codec is not None
            and not self.codec.lossless
        )
        self._residuals: Dict[int, np.ndarray] = {}
        self.bytes_up_total = 0
        self.bytes_down_total = 0
        self.dense_up_total = 0

    # Placement ----------------------------------------------------------- #
    @property
    def enabled(self) -> bool:
        return self.codec is not None

    @property
    def device_side(self) -> bool:
        """Whether encoding runs where the solve runs (the IPC fast path)."""
        return self.enabled and not self.ef

    @property
    def task_codec(self) -> Optional[Codec]:
        """The codec to attach to dispatched tasks (``None`` ⇒ ship dense)."""
        return self.codec if self.device_side else None

    # Predicted sizes ------------------------------------------------------ #
    def upload_ratio(self, n_params: int) -> float:
        """Predicted uplink bytes over dense bytes (1.0 when disabled)."""
        if self.codec is None or n_params <= 0:
            return 1.0
        return self.codec.wire_nbytes(n_params) / (DENSE_ITEMSIZE * n_params)

    # Accounting ----------------------------------------------------------- #
    def record_dispatch(
        self,
        n_tasks: int,
        n_params: int,
        telemetry=None,
        round_idx: Optional[int] = None,
    ) -> None:
        """Account the downlink model broadcasts for dispatched tasks."""
        down = n_tasks * DENSE_ITEMSIZE * n_params
        self.bytes_down_total += down
        if down and telemetry is not None and getattr(telemetry, "enabled", False):
            telemetry.metric(
                "comms.bytes_down", down, round_idx=round_idx, kind="counter"
            )

    @property
    def residual_clients(self) -> int:
        """Clients currently holding an error-feedback residual."""
        return len(self._residuals)

    def residual(self, client_id: int) -> Optional[np.ndarray]:
        """The client's pending error-feedback residual, if any."""
        return self._residuals.get(client_id)

    def stats(self) -> Dict[str, float]:
        """Cumulative wire accounting for this run."""
        ratio = (
            self.dense_up_total / self.bytes_up_total
            if self.bytes_up_total
            else 1.0
        )
        return {
            "bytes_up": float(self.bytes_up_total),
            "bytes_down": float(self.bytes_down_total),
            "dense_bytes_up": float(self.dense_up_total),
            "compression_ratio": float(ratio),
            "residual_clients": float(len(self._residuals)),
        }

    # Round-trip ----------------------------------------------------------- #
    def _roundtrip_server_side(
        self, update: "ClientUpdate", task: "LocalTask"
    ) -> int:
        """Encode+decode a dense update in place; returns payload bytes."""
        codec = self.codec
        if self.ef:
            delta = update.w - task.w_global
            residual = self._residuals.get(update.client_id)
            if residual is not None:
                delta = delta + residual
            payload = codec.encode_delta(delta, task.rng_entropy)
            decoded = codec.decode_delta(payload, delta.shape[0])
            residual = delta - decoded
            if np.all(np.isfinite(residual)):
                self._residuals[update.client_id] = residual
            else:
                # A poisoned delta (corruption fault) must not leave a
                # permanently-NaN accumulator behind; the device resets
                # its memory and the quarantine guard handles the update.
                self._residuals.pop(update.client_id, None)
            update.w = task.w_global + decoded
        else:
            payload = codec.encode_update(
                update.w, task.w_global, task.rng_entropy
            )
            update.w = codec.decode_update(payload, task.w_global)
        return payload.nbytes

    def finalize_round(
        self,
        updates: Sequence["ClientUpdate"],
        tasks: Sequence["LocalTask"],
        telemetry=None,
        count_dispatch: bool = True,
    ) -> None:
        """Decode every update in the batch and account its wire bytes.

        ``updates`` and ``tasks`` are aligned pairs (the async engine
        passes the delivered entries' own tasks, which may be a subset of
        what it admitted this round).  Device-side-encoded updates
        (``update.payload`` set) are decoded; dense updates are
        round-tripped server-side (applying error feedback when enabled).
        ``count_dispatch=False`` skips downlink accounting for engines
        that account it at admission instead.
        """
        if self.codec is None:
            return
        from ..runtime.executor import task_round

        emit = telemetry is not None and getattr(telemetry, "enabled", False)
        round_idx = task_round(tasks[0]) if tasks else None
        if count_dispatch and tasks:
            self.record_dispatch(
                len(tasks), tasks[0].w_global.shape[0],
                telemetry=telemetry, round_idx=round_idx,
            )
        if not updates:
            return
        n_params = tasks[0].w_global.shape[0]

        encode_seconds = 0.0
        decode_seconds = 0.0
        batch_up = 0
        for update, task in zip(updates, tasks):
            payload = getattr(update, "payload", None)
            if payload is not None:
                # Device-side encoded: the wire buffer is the update.
                t0 = time.perf_counter() if emit else 0.0
                update.w = self.codec.decode_update(payload, task.w_global)
                if emit:
                    decode_seconds += time.perf_counter() - t0
                update.payload = None
                nbytes = payload.nbytes
                if update.timings is not None:
                    encode_seconds += update.timings.get("comm_encode", 0.0)
            else:
                t0 = time.perf_counter() if emit else 0.0
                nbytes = self._roundtrip_server_side(update, task)
                if emit:
                    # The server-side round-trip is one fused pass; book
                    # it as encode time (decode is the cheaper half).
                    encode_seconds += time.perf_counter() - t0
                if update.timings is not None:
                    update.timings["payload_bytes"] = float(nbytes)
            batch_up += nbytes
        dense_up = len(updates) * DENSE_ITEMSIZE * n_params
        self.bytes_up_total += batch_up
        self.dense_up_total += dense_up

        if emit:
            telemetry.record_span(
                "comm:encode", encode_seconds, round_idx=round_idx,
                clients=len(updates), bytes=batch_up, codec=self.codec.spec(),
            )
            telemetry.record_span(
                "comm:decode", decode_seconds, round_idx=round_idx,
                clients=len(updates),
            )
            telemetry.metric(
                "comms.bytes_up", batch_up, round_idx=round_idx,
                kind="counter",
            )
            if batch_up:
                telemetry.metric(
                    "comms.compression_ratio", dense_up / batch_up,
                    round_idx=round_idx, kind="gauge",
                )
