"""Update codecs: compact wire encodings of client model updates.

A federated round moves two kinds of traffic: the dense global model
``w_t`` broadcast to every selected device (downlink), and each device's
local result ``w_k^{t+1}`` shipped back (uplink).  The uplink is where
compression pays — there is one upload per participating device per round
— and it is what these codecs compress: a codec turns an update into a
:class:`WirePayload` (a contiguous ``bytes`` buffer plus byte count and
scalar metadata) and back.

Determinism contract
--------------------
Encoding is a pure function of ``(update, round-start model, entropy)``.
Stochastic codecs (QSGD) derive their randomness from the task's entropy
tuple plus a dedicated salt — disjoint from the mini-batch and corruption
streams — so every executor produces bit-identical payloads for the same
task, retries draw fresh rounding noise (their entropy carries the retry
salt and attempt index), and ledger replay re-derives identical wire
traffic.

Delta vs. raw encodings
-----------------------
Lossy codecs operate on the *delta* ``w - w_global`` (small, centered
near zero — the natural input for quantization and sparsification, and
the space in which error feedback accumulates).  The identity codec
instead ships the raw ``w`` bytes: ``w_global + (w - w_global)`` is not
bitwise ``w`` in floating point, and identity's contract is exact
passthrough — histories with the identity codec are bit-identical to
uncompressed runs.

Wire formats are explicit little-endian so payloads (and their byte
counts) are platform-independent.
"""

from __future__ import annotations

import abc
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Sequence, Tuple

import numpy as np

# Entropy salt deriving a codec's randomness stream from a task's entropy
# tuple — disjoint from the mini-batch (no salt) and corruption
# (_CORRUPTION_SALT) streams, so enabling a stochastic codec never
# perturbs the solve it compresses.
COMMS_SALT = 0xC0DE

#: Bytes per dense float64 coordinate — the uncompressed baseline against
#: which compression ratios are measured.
DENSE_ITEMSIZE = 8


def codec_rng(entropy: Sequence[int]) -> np.random.Generator:
    """The codec randomness for one task, identical in any process."""
    return np.random.default_rng(
        np.random.SeedSequence([int(x) for x in entropy] + [COMMS_SALT])
    )


@dataclass(frozen=True)
class WirePayload:
    """One encoded update as it would cross the network.

    Attributes
    ----------
    codec:
        Spec of the codec that produced the payload (``"qsgd8"`` etc.).
    buffer:
        The packed wire bytes — a single contiguous ``bytes`` object, so
        shipping it across a process boundary pickles the raw buffer
        exactly once (no ndarray reduce round-trip).
    nbytes:
        ``len(buffer)`` — the accounted uplink size.
    meta:
        Codec-specific scalars (quantization bit width, kept-coordinate
        count, ...) for diagnostics; never needed to decode.
    """

    codec: str
    buffer: bytes
    nbytes: int
    meta: Dict[str, Any] = field(default_factory=dict)


class Codec(abc.ABC):
    """Encode/decode one client update to and from wire bytes.

    Subclasses implement the delta-space pair
    :meth:`encode_delta`/:meth:`decode_delta`; the update-space pair
    :meth:`encode_update`/:meth:`decode_update` wraps them with the
    ``w - w_global`` arithmetic (the identity codec overrides the update
    pair to pass raw bytes through bit-exactly).  :meth:`wire_nbytes`
    predicts the exact payload size for a given dimension *without*
    encoding — the async engine uses it to scale simulated upload times
    at admission, before any solve has run.
    """

    #: Canonical codec name (registry key prefix).
    name: str = ""
    #: Lossless codecs round-trip every update bit-exactly; error feedback
    #: is skipped for them (the residual is identically zero).
    lossless: bool = False

    @abc.abstractmethod
    def spec(self) -> str:
        """Short display spec (``"identity"``, ``"qsgd8"``, ``"topk64"``)."""

    @abc.abstractmethod
    def wire_nbytes(self, n_params: int) -> int:
        """Exact encoded payload size in bytes for a ``n_params`` vector."""

    @abc.abstractmethod
    def encode_delta(
        self, delta: np.ndarray, entropy: Sequence[int]
    ) -> WirePayload:
        """Encode a delta vector (update minus round-start model)."""

    @abc.abstractmethod
    def decode_delta(self, payload: WirePayload, n_params: int) -> np.ndarray:
        """Decode a payload back to a float64 delta vector."""

    def encode_update(
        self, w: np.ndarray, w_global: np.ndarray, entropy: Sequence[int]
    ) -> WirePayload:
        """Encode a local result against the round-start model."""
        return self.encode_delta(w - w_global, entropy)

    def decode_update(
        self, payload: WirePayload, w_global: np.ndarray
    ) -> np.ndarray:
        """Decode a payload back to the local result's iterate."""
        return w_global + self.decode_delta(payload, w_global.shape[0])


@dataclass(frozen=True)
class IdentityCodec(Codec):
    """Bit-identical passthrough: the dense update as raw float64 bytes.

    The parity anchor of the subsystem: byte accounting and the payload
    round-trip machinery run exactly as for lossy codecs, but the decoded
    update is bitwise the original (NaNs from corruption faults included),
    so identity-codec histories equal uncompressed histories on every
    executor.
    """

    name = "identity"
    lossless = True

    def spec(self) -> str:
        return "identity"

    def wire_nbytes(self, n_params: int) -> int:
        return DENSE_ITEMSIZE * n_params

    def encode_update(
        self, w: np.ndarray, w_global: np.ndarray, entropy: Sequence[int]
    ) -> WirePayload:
        buffer = np.ascontiguousarray(w, dtype="<f8").tobytes()
        return WirePayload(self.spec(), buffer, len(buffer))

    def decode_update(
        self, payload: WirePayload, w_global: np.ndarray
    ) -> np.ndarray:
        return np.frombuffer(payload.buffer, dtype="<f8").copy()

    def encode_delta(
        self, delta: np.ndarray, entropy: Sequence[int]
    ) -> WirePayload:
        buffer = np.ascontiguousarray(delta, dtype="<f8").tobytes()
        return WirePayload(self.spec(), buffer, len(buffer))

    def decode_delta(self, payload: WirePayload, n_params: int) -> np.ndarray:
        return np.frombuffer(payload.buffer, dtype="<f8").copy()


@dataclass(frozen=True)
class CastCodec(Codec):
    """Low-precision float cast of the delta (``fp16`` or ``fp32``).

    The simplest lossy codec: 2x (fp32) or 4x (fp16) smaller than dense
    float64, deterministic (no randomness), with IEEE round-to-nearest
    as the only loss.  fp16 overflows to ±inf for deltas beyond ~65504 —
    loud, finite-check-detectable damage, same as any diverging solve.
    """

    name = "cast"
    dtype: str = "fp16"

    _WIRE = {"fp16": "<f2", "fp32": "<f4"}

    def __post_init__(self) -> None:
        if self.dtype not in self._WIRE:
            raise ValueError(
                f"cast codec dtype must be one of {tuple(self._WIRE)}, "
                f"got {self.dtype!r}"
            )

    def spec(self) -> str:
        return self.dtype

    def wire_nbytes(self, n_params: int) -> int:
        return np.dtype(self._WIRE[self.dtype]).itemsize * n_params

    def encode_delta(
        self, delta: np.ndarray, entropy: Sequence[int]
    ) -> WirePayload:
        buffer = np.asarray(delta).astype(self._WIRE[self.dtype]).tobytes()
        return WirePayload(self.spec(), buffer, len(buffer))

    def decode_delta(self, payload: WirePayload, n_params: int) -> np.ndarray:
        wire = np.frombuffer(payload.buffer, dtype=self._WIRE[self.dtype])
        return wire.astype(np.float64)


@dataclass(frozen=True)
class QSGDCodec(Codec):
    """Seeded QSGD-style stochastic uniform quantization.

    Coordinates are mapped onto ``2^bits`` uniform levels spanning
    ``[-scale, scale]`` with ``scale = max|delta|``, rounded
    *stochastically* (up with probability equal to the fractional
    position) so quantization is unbiased:  ``E[decode(encode(v))] = v``.
    Levels bit-pack to exactly ``bits`` bits per coordinate; the wire
    format is an 8-byte float64 scale header followed by the packed
    level stream, so an 8-bit payload is ~8x smaller than dense float64.

    The per-coordinate error is bounded by one level width,
    ``2 * scale / (2^bits - 1)``.  A non-finite scale (a NaN- or
    inf-poisoned delta) encodes a zeroed level stream under the bad scale
    header and decodes to all-NaN — corruption faults stay loud through
    compression, deterministically.
    """

    name = "qsgd"
    bits: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError(
                f"qsgd bit width must be in [1, 16], got {self.bits}"
            )

    @property
    def levels(self) -> int:
        """Highest quantization level (``2^bits - 1``)."""
        return (1 << self.bits) - 1

    def spec(self) -> str:
        return f"qsgd{self.bits}"

    def wire_nbytes(self, n_params: int) -> int:
        return 8 + (n_params * self.bits + 7) // 8

    def encode_delta(
        self, delta: np.ndarray, entropy: Sequence[int]
    ) -> WirePayload:
        delta = np.asarray(delta, dtype=np.float64)
        d = delta.shape[0]
        levels = self.levels
        scale = float(np.max(np.abs(delta))) if d else 0.0
        if not np.isfinite(scale) or scale == 0.0:
            # Degenerate vectors carry no level information: an all-zero
            # stream under the (possibly non-finite) scale header decodes
            # to zeros or all-NaN respectively.
            q = np.zeros(d, dtype=np.uint32)
        else:
            u = (delta / scale + 1.0) * (0.5 * levels)
            base = np.floor(u)
            draw = codec_rng(entropy).random(d)
            q = base.astype(np.int64) + (draw < (u - base))
            q = np.clip(q, 0, levels).astype(np.uint32)
        buffer = struct.pack("<d", scale) + _pack_levels(q, self.bits)
        return WirePayload(
            self.spec(), buffer, len(buffer),
            meta={"bits": self.bits, "scale": scale},
        )

    def decode_delta(self, payload: WirePayload, n_params: int) -> np.ndarray:
        levels = self.levels
        (scale,) = struct.unpack_from("<d", payload.buffer, 0)
        if not np.isfinite(scale):
            return np.full(n_params, np.nan)
        if scale == 0.0:
            return np.zeros(n_params)
        q = _unpack_levels(payload.buffer[8:], n_params, self.bits)
        return scale * (q.astype(np.float64) * (2.0 / levels) - 1.0)


@dataclass(frozen=True)
class TopKCodec(Codec):
    """Top-k magnitude sparsification with packed index+value encoding.

    Keeps the ``k`` largest-magnitude delta coordinates (stable-sorted,
    so ties break by coordinate index identically everywhere), shipping
    them as sorted uint32 indices plus float32 values — 8 wire bytes per
    kept coordinate after a 4-byte count header.  Dropped coordinates
    decode to zero; with error feedback enabled they accumulate in the
    sender's residual and ship in a later round.

    NaN coordinates sort as infinite magnitude, so a corruption fault's
    poisoned coordinates are always among the kept set — compression
    never silently launders a poisoned update past the finiteness guard.
    """

    name = "topk"
    k: int = 64

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"topk k must be >= 1, got {self.k}")

    def spec(self) -> str:
        return f"topk{self.k}"

    def wire_nbytes(self, n_params: int) -> int:
        return 4 + 8 * min(self.k, n_params)

    def encode_delta(
        self, delta: np.ndarray, entropy: Sequence[int]
    ) -> WirePayload:
        delta = np.asarray(delta, dtype=np.float64)
        k = min(self.k, delta.shape[0])
        magnitude = np.abs(delta)
        magnitude = np.where(np.isnan(magnitude), np.inf, magnitude)
        order = np.argsort(-magnitude, kind="stable")[:k]
        idx = np.sort(order).astype("<u4")
        vals = delta[idx].astype("<f4")
        buffer = struct.pack("<I", k) + idx.tobytes() + vals.tobytes()
        return WirePayload(
            self.spec(), buffer, len(buffer), meta={"k": int(k)}
        )

    def decode_delta(self, payload: WirePayload, n_params: int) -> np.ndarray:
        (k,) = struct.unpack_from("<I", payload.buffer, 0)
        idx = np.frombuffer(payload.buffer, dtype="<u4", count=k, offset=4)
        vals = np.frombuffer(
            payload.buffer, dtype="<f4", count=k, offset=4 + 4 * k
        )
        out = np.zeros(n_params)
        out[idx] = vals.astype(np.float64)
        return out


def _pack_levels(q: np.ndarray, bits: int) -> bytes:
    """Bit-pack unsigned levels (< 2^bits) into a contiguous byte stream."""
    if q.size == 0:
        return b""
    shifts = np.arange(bits, dtype=np.uint32)
    bit_matrix = ((q[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bit_matrix.ravel()).tobytes()


def _unpack_levels(packed: bytes, count: int, bits: int) -> np.ndarray:
    """Inverse of :func:`_pack_levels` for ``count`` levels."""
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    raw = np.frombuffer(packed, dtype=np.uint8)
    stream = np.unpackbits(raw, count=count * bits)
    weights = (1 << np.arange(bits, dtype=np.uint32)).astype(np.uint32)
    return stream.reshape(count, bits).astype(np.uint32) @ weights
