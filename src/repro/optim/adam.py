"""Adam local solver — demonstrates FedProx's solver-agnosticism.

The paper stresses that FedProx admits "any local (possibly non-iterative)
solver"; the ablation benchmark ``benchmarks/ablations`` swaps Adam in for
SGD inside the same FedProx server loop.
"""

from __future__ import annotations

import numpy as np

from .base import LocalSolver, work_batches
from .proximal import LocalObjective


class AdamSolver(LocalSolver):
    """Mini-batch Adam with bias correction.

    Moment state is reset at every local solve, matching the federated
    setting where devices are stateless between rounds.

    Parameters
    ----------
    learning_rate:
        Step size.
    beta1, beta2:
        Exponential decay rates for the first/second moment estimates.
    eps:
        Denominator fuzz factor.
    batch_size:
        Mini-batch size.
    """

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        batch_size: int = 10,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.batch_size = int(batch_size)

    def solve(
        self,
        objective: LocalObjective,
        w_start: np.ndarray,
        epochs: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        w = np.array(w_start, dtype=np.float64, copy=True)
        m = np.zeros_like(w)
        v = np.zeros_like(w)
        step = 0
        for batch in work_batches(
            objective.n_samples, self.batch_size, epochs, rng
        ):
            step += 1
            grad = objective.gradient(w, batch)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            m_hat = m / (1 - self.beta1**step)
            v_hat = v / (1 - self.beta2**step)
            w -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
        return w

    def describe(self) -> str:
        return f"Adam(lr={self.learning_rate}, B={self.batch_size})"
