"""Adam local solver — demonstrates FedProx's solver-agnosticism.

The paper stresses that FedProx admits "any local (possibly non-iterative)
solver"; the ablation benchmark ``benchmarks/ablations`` swaps Adam in for
SGD inside the same FedProx server loop.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import BatchSchedule, LocalSolver
from .proximal import LocalObjective


class AdamSolver(LocalSolver):
    """Mini-batch Adam with bias correction.

    Moment state is reset at every local solve, matching the federated
    setting where devices are stateless between rounds.

    Parameters
    ----------
    learning_rate:
        Step size.
    beta1, beta2:
        Exponential decay rates for the first/second moment estimates.
    eps:
        Denominator fuzz factor.
    batch_size:
        Mini-batch size.
    """

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        batch_size: int = 10,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.batch_size = int(batch_size)

    def solve(
        self,
        objective: LocalObjective,
        w_start: np.ndarray,
        epochs: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        w = np.array(w_start, dtype=np.float64, copy=True)
        m = np.zeros_like(w)
        v = np.zeros_like(w)
        step = 0
        schedule = BatchSchedule(objective.n_samples, self.batch_size, epochs)
        for batch in schedule.batches(rng):
            step += 1
            grad = objective.gradient(w, batch)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            m_hat = m / (1 - self.beta1**step)
            v_hat = v / (1 - self.beta2**step)
            w -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
        return w

    def describe(self) -> str:
        return (
            f"Adam(lr={self.learning_rate}, B={self.batch_size}, "
            "stacked=yes, stateless=per-solve)"
        )

    # Stacked cohort protocol -------------------------------------------- #
    @property
    def supports_stacked_solve(self) -> bool:
        return True

    def stacked_plan(
        self, n_samples: int, epochs: float, rng: np.random.Generator
    ) -> List[np.ndarray]:
        return BatchSchedule(n_samples, self.batch_size, epochs).materialize(rng)

    def stacked_state(self, shape: tuple) -> dict:
        # Fresh zeroed moments per cohort solve: the stateless-device
        # contract (moment state never leaks across rounds) holds exactly
        # as in the scalar path, where solve() re-zeros m and v.
        return {
            "m": np.zeros(shape, dtype=np.float64),
            "v": np.zeros(shape, dtype=np.float64),
            "scratch": np.empty(shape, dtype=np.float64),
            "scratch2": np.empty(shape, dtype=np.float64),
        }

    def stacked_step(
        self, W: np.ndarray, G: np.ndarray, state: dict, step
    ) -> None:
        # ``step`` is a plain int when every active lane sits at the same
        # local step (one chain per lane); the packing planner passes an
        # (A,) array of per-row 1-based steps when lanes at different chain
        # offsets share a segment.  Both branches evaluate beta**step
        # through libm ``pow`` (Python float ** int and np.power on float64
        # agree), so the bias correction is numerically identical either
        # way.
        a = len(W)
        m = state["m"][:a]
        v = state["v"][:a]
        scratch = state["scratch"][:a]
        scratch2 = state["scratch2"][:a]
        # m = beta1 * m + (1 - beta1) * grad, same association as scalar.
        np.multiply(m, self.beta1, out=m)
        np.multiply(G, 1 - self.beta1, out=scratch)
        m += scratch
        # v = beta2 * v + (1 - beta2) * grad**2
        np.multiply(v, self.beta2, out=v)
        np.power(G, 2, out=scratch)
        np.multiply(scratch, 1 - self.beta2, out=scratch)
        v += scratch
        if isinstance(step, np.ndarray):
            exp = step.astype(np.float64)[:, None]
            corr1 = 1.0 - np.power(self.beta1, exp)
            corr2 = 1.0 - np.power(self.beta2, exp)
        else:
            corr1 = 1 - self.beta1**step
            corr2 = 1 - self.beta2**step
        # w -= lr * m_hat / (sqrt(v_hat) + eps)
        np.divide(m, corr1, out=scratch)   # m_hat
        np.multiply(scratch, self.learning_rate, out=scratch)
        np.divide(v, corr2, out=scratch2)  # v_hat
        np.sqrt(scratch2, out=scratch2)
        scratch2 += self.eps
        np.divide(scratch, scratch2, out=scratch)
        np.subtract(W, scratch, out=W)

    def stacked_reset(self, state: dict, rows) -> None:
        # A lane recycled for a new client chain starts from zeroed
        # moments, exactly as the scalar solve() re-zeros m and v.
        state["m"][rows] = 0.0
        state["v"][rows] = 0.0
