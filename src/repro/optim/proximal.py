"""Local-subproblem objectives, including the FedProx proximal surrogate.

The paper's local subproblem (Equation 2) is::

    h_k(w; w_t) = F_k(w) + (mu/2) * ||w - w_t||^2

:class:`LocalObjective` wraps a device's model and data into loss/gradient
oracles over the flat parameter vector; setting ``mu=0`` recovers the plain
FedAvg local objective ``F_k``.

An optional *linear correction term* ``<correction, w>`` supports the
FedDane baseline of Appendix B, whose local subproblem augments Equation 2
with the DANE gradient correction ``<grad_f_estimate - grad_F_k(w_t), w>``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..models.base import FederatedModel


class LocalObjective:
    """Oracle for ``h_k(w; w_ref) = F_k(w) + (mu/2)||w - w_ref||^2``.

    Parameters
    ----------
    model:
        Model whose parameters will be set to each query point ``w``.
        The objective owns the model for the duration of the solve; callers
        should not mutate it concurrently.
    X, y:
        The device's local training data (full arrays; mini-batching is
        done via the ``indices`` argument of :meth:`gradient`).
    w_ref:
        The anchor point ``w_t`` (the global model at round start).  May be
        ``None`` when ``mu == 0``.
    mu:
        Proximal coefficient ``µ >= 0``.
    correction:
        Optional linear term coefficient vector; when given, the objective
        becomes ``F_k(w) + <correction, w> + (mu/2)||w - w_ref||^2`` (the
        FedDane subproblem).
    """

    def __init__(
        self,
        model: FederatedModel,
        X: np.ndarray,
        y: np.ndarray,
        w_ref: Optional[np.ndarray] = None,
        mu: float = 0.0,
        correction: Optional[np.ndarray] = None,
    ) -> None:
        if mu < 0:
            raise ValueError(f"mu must be non-negative, got {mu}")
        if mu > 0 and w_ref is None:
            raise ValueError("w_ref is required when mu > 0")
        self.model = model
        self.X = X
        self.y = y
        self.mu = float(mu)
        self.w_ref = None if w_ref is None else np.asarray(w_ref, dtype=np.float64)
        self.correction = (
            None if correction is None else np.asarray(correction, dtype=np.float64)
        )
        self.n_samples = len(y)

    def loss(self, w: np.ndarray) -> float:
        """Full-data value of ``h_k`` at ``w``."""
        self.model.set_params(w)
        value = self.model.loss(self.X, self.y)
        if self.mu > 0:
            diff = w - self.w_ref
            value += 0.5 * self.mu * float(diff @ diff)
        if self.correction is not None:
            value += float(self.correction @ w)
        return value

    def gradient(
        self, w: np.ndarray, indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gradient of ``h_k`` at ``w`` on a mini-batch (full data if ``None``)."""
        self.model.set_params(w)
        if indices is None:
            grad = self.model.gradient(self.X, self.y)
        else:
            grad = self.model.gradient(self.X[indices], self.y[indices])
        if self.mu > 0:
            grad = grad + self.mu * (w - self.w_ref)
        if self.correction is not None:
            grad = grad + self.correction
        return grad

    def loss_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        """Full-data value and gradient of ``h_k`` at ``w``."""
        self.model.set_params(w)
        value, grad = self.model.loss_and_gradient(self.X, self.y)
        if self.mu > 0:
            diff = w - self.w_ref
            value += 0.5 * self.mu * float(diff @ diff)
            grad = grad + self.mu * diff
        if self.correction is not None:
            value += float(self.correction @ w)
            grad = grad + self.correction
        return value, grad
