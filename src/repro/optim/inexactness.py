"""γ-inexactness measurement (Definitions 1 and 2 of the paper).

A point ``w*`` is a γ-inexact solution of ``min_w h_k(w; w_t)`` when::

    ||∇h_k(w*; w_t)|| <= γ ||∇h_k(w_t; w_t)||

Smaller γ means a more exact local solve.  These helpers let experiments
and tests *measure* the inexactness a given solver actually achieved — the
empirical counterpart of the γ_k^t quantities in Corollary 9.
"""

from __future__ import annotations

import numpy as np

from .proximal import LocalObjective


def gamma_inexactness(
    objective: LocalObjective, w_star: np.ndarray, w_start: np.ndarray
) -> float:
    """Measured γ for a candidate solution of a local subproblem.

    Parameters
    ----------
    objective:
        The local subproblem ``h_k(.; w_start)`` (its ``w_ref`` should be
        ``w_start`` whenever ``mu > 0``).
    w_star:
        The solver's output.
    w_start:
        The subproblem anchor ``w_t``.

    Returns
    -------
    float
        ``||∇h(w*)|| / ||∇h(w_t)||``.  Returns ``0.0`` when the anchor is
        already stationary (both norms ~0), and ``inf`` if only the anchor
        gradient vanishes.
    """
    grad_star = objective.gradient(w_star)
    grad_start = objective.gradient(np.asarray(w_start, dtype=np.float64))
    norm_star = float(np.linalg.norm(grad_star))
    norm_start = float(np.linalg.norm(grad_start))
    if norm_start == 0.0:
        return 0.0 if norm_star == 0.0 else float("inf")
    return norm_star / norm_start


def is_gamma_inexact(
    objective: LocalObjective,
    w_star: np.ndarray,
    w_start: np.ndarray,
    gamma: float,
) -> bool:
    """Whether ``w_star`` satisfies Definition 1 for tolerance ``gamma``."""
    return gamma_inexactness(objective, w_star, w_start) <= gamma
