"""Stochastic gradient descent local solvers.

:class:`SGDSolver` is the solver used in all of the paper's experiments
("we employ SGD as a local solver for FedProx, to draw a fair comparison
with FedAvg").  :class:`GDSolver` performs full-batch gradient descent and
:class:`MomentumSGDSolver` adds heavy-ball momentum; both demonstrate the
framework's solver-agnosticism in the ablation benchmarks.

All three implement the stacked cohort protocol (see
:mod:`repro.optim.base`): their ``stacked_step`` performs the same
floating-point operations as one scalar iteration, applied row-wise to a
``(K, d)`` cohort matrix with preallocated workspace buffers, so the
cohort fast path reproduces the scalar path bit for bit.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import BatchSchedule, LocalSolver
from .proximal import LocalObjective


class SGDSolver(LocalSolver):
    """Mini-batch SGD with a constant step size.

    Parameters
    ----------
    learning_rate:
        Constant step size ``η`` (the paper tunes this per dataset and never
        decays it).
    batch_size:
        Mini-batch size (10 in all paper experiments).
    """

    def __init__(self, learning_rate: float, batch_size: int = 10) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)

    def solve(
        self,
        objective: LocalObjective,
        w_start: np.ndarray,
        epochs: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        w = np.array(w_start, dtype=np.float64, copy=True)
        schedule = BatchSchedule(objective.n_samples, self.batch_size, epochs)
        for batch in schedule.batches(rng):
            grad = objective.gradient(w, batch)
            w -= self.learning_rate * grad
        return w

    def describe(self) -> str:
        return f"SGD(lr={self.learning_rate}, B={self.batch_size})"

    # Stacked cohort protocol -------------------------------------------- #
    @property
    def supports_stacked_solve(self) -> bool:
        return True

    def stacked_plan(
        self, n_samples: int, epochs: float, rng: np.random.Generator
    ) -> List[np.ndarray]:
        return BatchSchedule(n_samples, self.batch_size, epochs).materialize(rng)

    def stacked_state(self, shape: tuple) -> dict:
        return {"scratch": np.empty(shape, dtype=np.float64)}

    def stacked_step(
        self, W: np.ndarray, G: np.ndarray, state: dict, step: int
    ) -> None:
        scratch = state["scratch"][: len(W)]
        np.multiply(G, self.learning_rate, out=scratch)
        np.subtract(W, scratch, out=W)


class MomentumSGDSolver(LocalSolver):
    """Heavy-ball SGD: ``v <- beta v + g``, ``w <- w - lr v``."""

    def __init__(
        self, learning_rate: float, momentum: float = 0.9, batch_size: int = 10
    ) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.batch_size = int(batch_size)

    def solve(
        self,
        objective: LocalObjective,
        w_start: np.ndarray,
        epochs: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        w = np.array(w_start, dtype=np.float64, copy=True)
        velocity = np.zeros_like(w)
        schedule = BatchSchedule(objective.n_samples, self.batch_size, epochs)
        for batch in schedule.batches(rng):
            grad = objective.gradient(w, batch)
            velocity = self.momentum * velocity + grad
            w -= self.learning_rate * velocity
        return w

    def describe(self) -> str:
        return (
            f"MomentumSGD(lr={self.learning_rate}, beta={self.momentum}, "
            f"B={self.batch_size})"
        )

    # Stacked cohort protocol -------------------------------------------- #
    @property
    def supports_stacked_solve(self) -> bool:
        return True

    def stacked_plan(
        self, n_samples: int, epochs: float, rng: np.random.Generator
    ) -> List[np.ndarray]:
        return BatchSchedule(n_samples, self.batch_size, epochs).materialize(rng)

    def stacked_state(self, shape: tuple) -> dict:
        return {
            "velocity": np.zeros(shape, dtype=np.float64),
            "scratch": np.empty(shape, dtype=np.float64),
        }

    def stacked_step(
        self, W: np.ndarray, G: np.ndarray, state: dict, step
    ) -> None:
        # Rows of dropped-out clients freeze along with their velocity,
        # because only the active (A, d) prefix is ever touched; lanes
        # recycled for a new chain are re-zeroed via stacked_reset.
        v = state["velocity"][: len(W)]
        scratch = state["scratch"][: len(W)]
        np.multiply(v, self.momentum, out=v)
        v += G
        np.multiply(v, self.learning_rate, out=scratch)
        np.subtract(W, scratch, out=W)

    def stacked_reset(self, state: dict, rows) -> None:
        # A fresh chain starts from zero velocity, as scalar solve() does.
        state["velocity"][rows] = 0.0


class GDSolver(LocalSolver):
    """Full-batch gradient descent (one step per 'epoch').

    Fractional budgets are rounded to the nearest step count, with a
    minimum of one step.
    """

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def solve(
        self,
        objective: LocalObjective,
        w_start: np.ndarray,
        epochs: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        w = np.array(w_start, dtype=np.float64, copy=True)
        steps = max(1, int(round(epochs)))
        for _ in range(steps):
            w -= self.learning_rate * objective.gradient(w)
        return w

    def describe(self) -> str:
        return f"GD(lr={self.learning_rate})"

    # Stacked cohort protocol -------------------------------------------- #
    @property
    def supports_stacked_solve(self) -> bool:
        return True

    def stacked_plan(
        self, n_samples: int, epochs: float, rng: np.random.Generator
    ) -> List[np.ndarray]:
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        # Full-batch steps; rng is deliberately untouched (the scalar
        # solve never draws from it either).
        steps = max(1, int(round(epochs)))
        return [np.arange(n_samples)] * steps

    def stacked_state(self, shape: tuple) -> dict:
        return {"scratch": np.empty(shape, dtype=np.float64)}

    def stacked_step(
        self, W: np.ndarray, G: np.ndarray, state: dict, step: int
    ) -> None:
        scratch = state["scratch"][: len(W)]
        np.multiply(G, self.learning_rate, out=scratch)
        np.subtract(W, scratch, out=W)
