"""Local solvers, local-subproblem objectives, and batch scheduling."""

from .adam import AdamSolver
from .base import (
    BatchSchedule,
    LocalSolver,
    batches_per_epoch,
    epoch_batches,
    work_batches,
)
from .inexactness import gamma_inexactness, is_gamma_inexact
from .proximal import LocalObjective
from .sgd import GDSolver, MomentumSGDSolver, SGDSolver

__all__ = [
    "LocalSolver",
    "LocalObjective",
    "BatchSchedule",
    "epoch_batches",
    "batches_per_epoch",
    "work_batches",
    "SGDSolver",
    "MomentumSGDSolver",
    "GDSolver",
    "AdamSolver",
    "gamma_inexactness",
    "is_gamma_inexact",
]
