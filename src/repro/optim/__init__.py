"""Local solvers and local-subproblem objectives."""

from .adam import AdamSolver
from .base import LocalSolver, epoch_batches
from .inexactness import gamma_inexactness, is_gamma_inexact
from .proximal import LocalObjective
from .sgd import GDSolver, MomentumSGDSolver, SGDSolver

__all__ = [
    "LocalSolver",
    "LocalObjective",
    "epoch_batches",
    "SGDSolver",
    "MomentumSGDSolver",
    "GDSolver",
    "AdamSolver",
    "gamma_inexactness",
    "is_gamma_inexact",
]
