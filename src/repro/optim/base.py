"""Local solver interface and the mini-batch schedule API.

FedProx is explicitly *solver-agnostic*: any procedure that produces a
γ-inexact minimizer of the local subproblem is admissible (paper §3.2).
:class:`LocalSolver` captures that contract — a solver receives a
:class:`~repro.optim.proximal.LocalObjective`, a starting point, and a
work budget (epochs), and returns the approximate minimizer.

Mini-batch schedules
--------------------
All batching logic lives in :class:`BatchSchedule`, the single source of
truth for how a device's work budget turns into shuffled mini-batches.
The historical helpers ``epoch_batches`` / ``batches_per_epoch`` /
``work_batches`` are **deprecated** thin wrappers: they emit
``DeprecationWarning`` and will be removed two PRs after this deprecation
lands (see DESIGN.md §10.5).  Construct a :class:`BatchSchedule` directly
instead.

Determinism: a schedule consumes the supplied ``rng`` exactly one
``permutation(n_samples)`` draw per *started* epoch, in order.  The cohort
fast path (:mod:`repro.runtime.cohort`) relies on this to replay the same
batch sequence the scalar solvers draw, making both paths bit-comparable.

Stacked (cohort) solve protocol
-------------------------------
Solvers that can run many clients' local solves simultaneously over a
``(K, n_params)`` weight matrix advertise ``supports_stacked_solve`` and
implement three hooks used by :class:`repro.runtime.cohort.CohortExecutor`:

``stacked_plan(n_samples, epochs, rng)``
    The per-client mini-batch index schedule (list of index arrays), drawn
    from ``rng`` exactly as the scalar ``solve`` would draw it.
``stacked_state(shape)``
    Preallocated workspace buffers for a cohort of ``shape = (L, d)``
    (one row per scheduler *lane*; see :mod:`repro.runtime.packing`).
``stacked_step(W, G, state, step)``
    Apply one update in place to the *active* rows ``W`` (a ``(A, d)``
    prefix view) given subproblem gradients ``G``.  ``step`` is either a
    plain ``int`` — every active row is at the same 1-based local step, the
    common case when each lane runs a single client chain — or an ``(A,)``
    ``int64`` array of per-row 1-based local steps, which the skew-aware
    packing planner passes when lanes at different chain offsets share a
    kernel segment.  Must perform the same floating-point operations, in
    the same order, as one scalar ``solve`` iteration so the two paths
    agree bitwise (step-dependent solvers like Adam must make the array
    branch numerically identical to the scalar exponentiation).
``stacked_reset(state, rows)``
    Re-zero any per-row solver state (momentum velocity, Adam moments)
    when a lane is recycled for a *new* client chain mid-solve.  ``rows``
    is an ``int`` row index or an index array.  Stateless solvers keep the
    default no-op.
"""

from __future__ import annotations

import abc
import warnings
from typing import Iterator, List, Optional

import numpy as np

from .proximal import LocalObjective


class BatchSchedule:
    """Mini-batch schedule for ``epochs`` passes over ``n_samples`` points.

    Parameters
    ----------
    n_samples:
        Device sample count (must be positive).
    batch_size:
        Mini-batch size; when ``batch_size >= n_samples`` every "epoch" is
        a single full-data batch (still shuffled).
    epochs:
        Work budget in passes over the data; fractional budgets (straggler
        devices) round to the nearest batch count, with a minimum of one
        batch so every participating device does *some* work.
    """

    def __init__(
        self, n_samples: int, batch_size: int, epochs: float = 1.0
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        self.n_samples = int(n_samples)
        self.batch_size = int(batch_size)
        self.epochs = float(epochs)

    @property
    def per_epoch(self) -> int:
        """Mini-batches in one epoch (final partial batch included)."""
        if self.batch_size >= self.n_samples:
            return 1
        return -(-self.n_samples // self.batch_size)  # ceil division

    @property
    def total(self) -> int:
        """Mini-batches in the whole budget (``>= 1``)."""
        return max(1, int(round(self.epochs * self.per_epoch)))

    def one_epoch(self, rng: np.random.Generator) -> List[np.ndarray]:
        """One shuffled epoch's batches (one ``permutation`` draw).

        The final partial batch is kept, matching common SGD practice and
        the reference implementation's behaviour.
        """
        order = rng.permutation(self.n_samples)
        if self.batch_size >= self.n_samples:
            return [order]
        return [
            order[start : start + self.batch_size]
            for start in range(0, self.n_samples, self.batch_size)
        ]

    def batches(self, rng: np.random.Generator) -> Iterator[np.ndarray]:
        """Yield :attr:`total` mini-batches, reshuffling at epoch starts."""
        done = 0
        total = self.total
        while done < total:
            for batch in self.one_epoch(rng):
                yield batch
                done += 1
                if done >= total:
                    return

    def materialize(self, rng: np.random.Generator) -> List[np.ndarray]:
        """The full batch sequence as a list (for the cohort planner)."""
        return list(self.batches(rng))


def _warn_deprecated_helper(name: str, replacement: str) -> None:
    warnings.warn(
        f"{name}() is deprecated and will be removed two PRs after the "
        f"repro.faults release; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def epoch_batches(
    n_samples: int, batch_size: int, rng: np.random.Generator
) -> list:
    """Deprecated: use ``BatchSchedule(n, b).one_epoch(rng)``."""
    _warn_deprecated_helper("epoch_batches", "BatchSchedule(...).one_epoch(rng)")
    return BatchSchedule(n_samples, batch_size).one_epoch(rng)


def batches_per_epoch(n_samples: int, batch_size: int) -> int:
    """Deprecated: use ``BatchSchedule(n, b).per_epoch``."""
    _warn_deprecated_helper("batches_per_epoch", "BatchSchedule(...).per_epoch")
    return BatchSchedule(n_samples, batch_size).per_epoch


def work_batches(
    n_samples: int, batch_size: int, epochs: float, rng: np.random.Generator
):
    """Deprecated: use ``BatchSchedule(n, b, epochs).batches(rng)``."""
    _warn_deprecated_helper("work_batches", "BatchSchedule(...).batches(rng)")
    return BatchSchedule(n_samples, batch_size, epochs).batches(rng)


class LocalSolver(abc.ABC):
    """Produce an approximate minimizer of a local subproblem.

    Implementations must be deterministic given the supplied ``rng``; the
    federated server uses this to fix mini-batch orders across compared
    runs, as the paper's experimental protocol requires.
    """

    @abc.abstractmethod
    def solve(
        self,
        objective: LocalObjective,
        w_start: np.ndarray,
        epochs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Run ``epochs`` of local work from ``w_start`` and return the result.

        Parameters
        ----------
        objective:
            The (possibly proximal) local objective ``h_k``.
        w_start:
            Starting parameter vector (the global model ``w_t``).
        epochs:
            Number of passes over the device's local data.
        rng:
            Source of mini-batch shuffling randomness.
        """

    def describe(self) -> str:
        """Short human-readable description, used in experiment logs."""
        return type(self).__name__

    def telemetry_tags(self) -> dict:
        """Flat description of this solver for telemetry run manifests.

        The default collects the common hyperparameter attributes when
        present; solvers with richer configuration can override to add
        their own fields (keep values JSON-scalar).
        """
        tags = {"solver": self.describe()}
        for attr in ("learning_rate", "batch_size", "momentum"):
            value = getattr(self, attr, None)
            if isinstance(value, (int, float)):
                tags[attr] = value
        return tags

    #: Attributes the default :meth:`spec` captures; every built-in solver
    #: stores its constructor args under these names, so the spec doubles
    #: as constructor kwargs for replay.
    _SPEC_ATTRS = (
        "learning_rate",
        "batch_size",
        "momentum",
        "beta1",
        "beta2",
        "eps",
    )

    def spec(self) -> dict:
        """Reconstruction descriptor for run-ledger manifests.

        ``type`` names the class; the remaining keys are constructor
        kwargs (the built-in solvers store each constructor argument under
        its own name, which this default harvests).  The replay layer
        rebuilds the solver as ``SolverClass(**spec_minus_type)``; solvers
        with constructor arguments outside :data:`_SPEC_ATTRS` must
        override.
        """
        spec: dict = {"type": type(self).__name__}
        for attr in self._SPEC_ATTRS:
            value = getattr(self, attr, None)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                spec[attr] = value
        return spec

    # Stacked (cohort) solve protocol ------------------------------------ #
    @property
    def supports_stacked_solve(self) -> bool:
        """Whether the solver implements the stacked cohort hooks below."""
        return False

    def stacked_plan(
        self, n_samples: int, epochs: float, rng: np.random.Generator
    ) -> List[np.ndarray]:
        """One client's mini-batch index schedule for a cohort solve.

        Must consume ``rng`` exactly as :meth:`solve` does, so the cohort
        path replays the scalar path's batch order.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support stacked cohort solves"
        )

    def stacked_state(self, shape: tuple) -> Optional[dict]:
        """Preallocated workspace for a cohort solve over ``shape=(L, d)``."""
        return None

    def stacked_step(
        self,
        W: np.ndarray,
        G: np.ndarray,
        state: Optional[dict],
        step,
    ) -> None:
        """Apply one in-place update to the active rows of the cohort.

        ``step`` is an ``int`` (uniform segment) or an ``(A,)`` int64 array
        of per-row 1-based local steps (mixed-offset segment).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support stacked cohort solves"
        )

    def stacked_reset(self, state: Optional[dict], rows) -> None:
        """Zero per-row solver state when a lane starts a new client chain.

        Called by the cohort scheduler each time a lane is (re)assigned to
        a client, so stateful solvers reproduce the scalar path's
        fresh-state-per-solve behaviour even when several clients share a
        lane back-to-back.  The default is a no-op, correct for stateless
        solvers whose workspace holds only scratch buffers.
        """
