"""Local solver interface.

FedProx is explicitly *solver-agnostic*: any procedure that produces a
γ-inexact minimizer of the local subproblem is admissible (paper §3.2).
:class:`LocalSolver` captures that contract — a solver receives a
:class:`~repro.optim.proximal.LocalObjective`, a starting point, and a
work budget (epochs), and returns the approximate minimizer.
"""

from __future__ import annotations

import abc

import numpy as np

from .proximal import LocalObjective


def epoch_batches(
    n_samples: int, batch_size: int, rng: np.random.Generator
) -> list:
    """Split a shuffled index range into mini-batches for one epoch.

    The final partial batch is kept (matching common SGD practice and the
    reference implementation's behaviour).
    """
    order = rng.permutation(n_samples)
    if batch_size >= n_samples:
        return [order]
    return [
        order[start : start + batch_size]
        for start in range(0, n_samples, batch_size)
    ]


def batches_per_epoch(n_samples: int, batch_size: int) -> int:
    """Number of mini-batches in one epoch (final partial batch included)."""
    if batch_size >= n_samples:
        return 1
    return -(-n_samples // batch_size)  # ceil division


def work_batches(
    n_samples: int, batch_size: int, epochs: float, rng: np.random.Generator
):
    """Yield mini-batches amounting to ``epochs`` passes over the data.

    ``epochs`` may be fractional — the systems simulator hands stragglers
    partial budgets (e.g. 0.4 of an epoch when ``E = 1``).  At least one
    batch is always yielded so every participating device does *some* work.
    """
    if epochs < 0:
        raise ValueError("epochs must be non-negative")
    per_epoch = batches_per_epoch(n_samples, batch_size)
    total = max(1, int(round(epochs * per_epoch)))
    done = 0
    while done < total:
        for batch in epoch_batches(n_samples, batch_size, rng):
            yield batch
            done += 1
            if done >= total:
                return


class LocalSolver(abc.ABC):
    """Produce an approximate minimizer of a local subproblem.

    Implementations must be deterministic given the supplied ``rng``; the
    federated server uses this to fix mini-batch orders across compared
    runs, as the paper's experimental protocol requires.
    """

    @abc.abstractmethod
    def solve(
        self,
        objective: LocalObjective,
        w_start: np.ndarray,
        epochs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Run ``epochs`` of local work from ``w_start`` and return the result.

        Parameters
        ----------
        objective:
            The (possibly proximal) local objective ``h_k``.
        w_start:
            Starting parameter vector (the global model ``w_t``).
        epochs:
            Number of passes over the device's local data.
        rng:
            Source of mini-batch shuffling randomness.
        """

    def describe(self) -> str:
        """Short human-readable description, used in experiment logs."""
        return type(self).__name__
