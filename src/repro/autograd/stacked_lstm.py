"""Stacked multi-client fused-LSTM kernels for the cohort solve path.

:func:`~repro.autograd.functional.fused_lstm` runs *one* client's unrolled
LSTM as hand-derived NumPy kernels.  The cohort local solver
(:mod:`repro.runtime.cohort`) instead advances K clients' FedProx solves
simultaneously, each at its *own* parameter vector — so these kernels add a
leading client axis to every buffer and batch each GEMM over it:
``(K, T*B, in) @ (K, in, 4H)`` for the input contribution,
``(K, B, H) @ (K, H, 4H)`` per step for the recurrence, and so on.

Bit-compatibility contract: for every client row ``k``, the operations
executed on slice ``k`` are the *same* floating-point operations, in the
same order, as one :func:`fused_lstm` forward/backward at that client's
parameters — NumPy's batched ``matmul`` dispatches the identical per-slice
GEMM, and all elementwise kernels are position-independent.  The models'
``stacked_gradient`` implementations (CharLSTM / SentimentLSTM) build on
this to satisfy the cohort determinism contract (row ``k`` equals the
scalar ``gradient()`` at ``W[k]`` to ulp-level rounding), with the graph
backend kept as the gradcheck oracle.

No autograd here: the cohort path needs raw gradients against caller-owned
flat parameter rows, not a graph.  Buffers live in a
:class:`StackedLSTMWorkspace` keyed by call shape, reused across the
thousands of steps of a cohort solve.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .functional import _sigmoid_inplace


class _StackedLayerTape:
    """Per-layer activations and gradient scratch, leading client axis."""

    def __init__(self, K: int, T: int, B: int, in_size: int, hidden: int) -> None:
        H = hidden
        # ``h[:, 0]`` / ``c[:, 0]`` hold the zero initial state, so
        # ``h[:, t]`` is the state *entering* step ``t``.
        self.h = np.zeros((K, T + 1, B, H))
        self.c = np.zeros((K, T + 1, B, H))
        self.tanh_c = np.empty((K, T, B, H))
        # Post-nonlinearity gates in the internal [i, f, o, g] order.
        self.gates = np.empty((K, T, B, 4 * H))
        self.w_x_p = np.empty((K, in_size, 4 * H))
        self.w_h_p = np.empty((K, H, 4 * H))
        self.b_p = np.empty((K, 4 * H))
        self.d_wx_p = np.empty((K, in_size, 4 * H))
        self.d_wh_p = np.empty((K, H, 4 * H))
        self.d_b_p = np.empty((K, 4 * H))
        self.d_wx = np.empty((K, in_size, 4 * H))
        self.d_wh = np.empty((K, H, 4 * H))
        self.d_b = np.empty((K, 4 * H))
        # Contiguous copy of h[:, 1:] — the next layer's input must be flat
        # (K, T*B, H) for the one-GEMM-per-layer input contribution to use
        # the same BLAS accumulation order as the scalar kernel.
        self.h_km = np.empty((K, T, B, H))


class StackedLSTMWorkspace:
    """Reusable buffers for stacked LSTM calls, keyed by call shape.

    One workspace per model instance amortizes allocation across every
    step of a cohort solve; the active width K shrinks at scheduler
    segment boundaries, so only a handful of shapes ever materialize.
    """

    def __init__(self) -> None:
        self._tapes: dict = {}

    def acquire(
        self, K: int, T: int, B: int, in_size: int, hidden: int, layers: int
    ) -> dict:
        key = (K, T, B, in_size, hidden, layers)
        st = self._tapes.get(key)
        if st is None:
            H = hidden
            st = {
                "K": K, "T": T, "B": B, "in_size": in_size, "H": H,
                "layers": [
                    _StackedLayerTape(K, T, B, in_size if l == 0 else H, H)
                    for l in range(layers)
                ],
                "x_km": np.empty((K, T, B, in_size)),
                "tmp4h": np.empty((K, B, 4 * H)),
                "tmp3h": np.empty((K, B, 3 * H)),
                "tmph": np.empty((K, B, H)),
                "perm": np.concatenate(
                    [
                        np.arange(2 * H),
                        np.arange(3 * H, 4 * H),
                        np.arange(2 * H, 3 * H),
                    ]
                ),
                "dh": np.empty((K, B, H)),
                "dc": np.empty((K, B, H)),
                "dgates": np.empty((K, T, B, 4 * H)),
                "dseq_a": np.empty((K, T, B, H)),
                "dseq_b": np.empty((K, T, B, H)),
                "hp_km": np.empty((K, T, B, H)),
                "dx": np.empty((K, T, B, in_size)),
            }
            self._tapes[key] = st
        return st


def stacked_lstm_forward(
    st: dict, params: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]]
) -> np.ndarray:
    """Multi-client forward; input read from ``st["x_km"]`` (K, T, B, in).

    ``params`` is one ``(w_x, w_h, b)`` triple per layer with leading
    client axis: ``(K, in, 4H)`` / ``(K, H, 4H)`` / ``(K, 4H)``, in the
    external [i, f, g, o] gate layout.  Returns the top layer's final
    hidden state as a ``(K, B, H)`` view into the tape.
    """
    K, T, B, H = st["K"], st["T"], st["B"], st["H"]
    tmp4h, tmph, perm = st["tmp4h"], st["tmph"], st["perm"]
    inp_flat = st["x_km"].reshape(K, T * B, st["in_size"])
    for l, (w_x, w_h, b) in enumerate(params):
        tape = st["layers"][l]
        gates, h, c = tape.gates, tape.h, tape.c
        np.take(w_x, perm, axis=2, out=tape.w_x_p)
        np.take(w_h, perm, axis=2, out=tape.w_h_p)
        np.take(b, perm, axis=1, out=tape.b_p)
        np.matmul(inp_flat, tape.w_x_p, out=gates.reshape(K, T * B, 4 * H))
        gates += tape.b_p[:, None, None, :]
        h[:, 0].fill(0.0)
        c[:, 0].fill(0.0)
        w_h_p = tape.w_h_p
        tanh_c = tape.tanh_c
        for t in range(T):
            g_t = gates[:, t]
            np.matmul(h[:, t], w_h_p, out=tmp4h)
            g_t += tmp4h
            _sigmoid_inplace(g_t[:, :, : 3 * H])        # input, forget, output
            np.tanh(g_t[:, :, 3 * H :], out=g_t[:, :, 3 * H :])  # candidate
            c_next = c[:, t + 1]
            np.multiply(g_t[:, :, H : 2 * H], c[:, t], out=c_next)  # f * c_prev
            np.multiply(g_t[:, :, :H], g_t[:, :, 3 * H :], out=tmph)  # i * g
            c_next += tmph
            np.tanh(c_next, out=tanh_c[:, t])
            np.multiply(g_t[:, :, 2 * H : 3 * H], tanh_c[:, t], out=h[:, t + 1])
        if l < len(params) - 1:
            np.copyto(tape.h_km, h[:, 1:])
            inp_flat = tape.h_km.reshape(K, T * B, H)
    return st["layers"][-1].h[:, T]


def stacked_lstm_backward(
    st: dict,
    params: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    dh_final: np.ndarray,
    need_dx: bool = False,
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Multi-client backward from a final-hidden-state gradient.

    ``dh_final`` is ``(K, B, H)``.  Per-layer gradients land in the tape
    buffers and are returned as ``(d_wx, d_wh, d_b)`` triples in the
    external gate layout (valid until the next call); when ``need_dx`` the
    input gradient is left in ``st["dx"]`` as ``(K, T, B, in)``.
    """
    K, T, B, H = st["K"], st["T"], st["B"], st["H"]
    dh, dc, tmp = st["dh"], st["dc"], st["tmph"]
    tmp3h, perm = st["tmp3h"], st["perm"]
    dgates = st["dgates"]
    dseq = st["dseq_a"]
    dseq.fill(0.0)
    dseq[:, T - 1] = dh_final
    grads: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = [None] * len(params)  # type: ignore[list-item]
    for l in range(len(params) - 1, -1, -1):
        tape = st["layers"][l]
        gates, h, c, tanh_c = tape.gates, tape.h, tape.c, tape.tanh_c
        dh.fill(0.0)
        dc.fill(0.0)
        w_h_pT = tape.w_h_p.transpose(0, 2, 1)
        for t in range(T - 1, -1, -1):
            dh += dseq[:, t]
            g_t = gates[:, t]
            i_g = g_t[:, :, :H]
            f_g = g_t[:, :, H : 2 * H]
            o_g = g_t[:, :, 2 * H : 3 * H]
            g_g = g_t[:, :, 3 * H :]
            dg_t = dgates[:, t]
            # dc += dh * o * (1 - tanh(c)^2)
            np.multiply(tanh_c[:, t], tanh_c[:, t], out=tmp)
            np.subtract(1.0, tmp, out=tmp)
            tmp *= o_g
            tmp *= dh
            dc += tmp
            # Gradients w.r.t. the three sigmoid gate *values*...
            np.multiply(dc, g_g, out=dg_t[:, :, :H])                 # input
            np.multiply(dc, c[:, t], out=dg_t[:, :, H : 2 * H])      # forget
            np.multiply(dh, tanh_c[:, t], out=dg_t[:, :, 2 * H : 3 * H])  # out
            # ...through one fused sigmoid derivative over [i, f, o].
            np.subtract(1.0, g_t[:, :, : 3 * H], out=tmp3h)
            tmp3h *= g_t[:, :, : 3 * H]
            dg_t[:, :, : 3 * H] *= tmp3h
            # cell gate: dc * i * (1 - g^2)
            da_g = dg_t[:, :, 3 * H :]
            np.multiply(g_g, g_g, out=tmp)
            np.subtract(1.0, tmp, out=tmp)
            np.multiply(dc, tmp, out=da_g)
            da_g *= i_g
            # carry to step t-1
            dc *= f_g
            np.matmul(dg_t, w_h_pT, out=dh)
        # Fused parameter accumulation — one GEMM per matrix over the
        # (T*B, .) stack per client, same accumulation order as scalar.
        flat_dg = dgates.reshape(K, T * B, 4 * H)
        if l == 0:
            inp_flat = st["x_km"].reshape(K, T * B, st["in_size"])
        else:
            prev = st["layers"][l - 1]
            inp_flat = prev.h_km.reshape(K, T * B, H)
        np.matmul(inp_flat.transpose(0, 2, 1), flat_dg, out=tape.d_wx_p)
        hp = st["hp_km"]
        np.copyto(hp, h[:, :T])
        np.matmul(
            hp.reshape(K, T * B, H).transpose(0, 2, 1), flat_dg,
            out=tape.d_wh_p,
        )
        flat_dg.sum(axis=1, out=tape.d_b_p)
        np.take(tape.d_wx_p, perm, axis=2, out=tape.d_wx)
        np.take(tape.d_wh_p, perm, axis=2, out=tape.d_wh)
        np.take(tape.d_b_p, perm, axis=1, out=tape.d_b)
        grads[l] = (tape.d_wx, tape.d_wh, tape.d_b)
        if l > 0:
            nxt = st["dseq_b"] if dseq is st["dseq_a"] else st["dseq_a"]
            np.matmul(
                flat_dg, tape.w_x_p.transpose(0, 2, 1),
                out=nxt.reshape(K, T * B, H),
            )
            dseq = nxt
        elif need_dx:
            np.matmul(
                flat_dg, tape.w_x_p.transpose(0, 2, 1),
                out=st["dx"].reshape(K, T * B, st["in_size"]),
            )
    return grads
