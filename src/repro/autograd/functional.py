"""Composite differentiable functions built on the primitive ops.

These are the loss functions and fused operations used by the model zoo.
Fusing softmax with cross-entropy keeps the backward pass numerically
stable and cheap (the classic ``softmax - onehot`` gradient).

:func:`fused_lstm` is the hand-derived forward/backward for the unrolled
multi-layer LSTM — the hot path of the paper's Shakespeare and Sent140
workloads.  It participates in the autograd graph like any other op (one
node for the whole unroll), but internally runs pure NumPy kernels over
preallocated workspaces instead of building ~10 graph nodes per timestep.
The graph-mode cell in :mod:`repro.nn.recurrent` remains the correctness
oracle: the test suite checks the fused gradients against it and against
finite differences.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from . import ops
from .tensor import Tensor, as_tensor


def softmax_cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    reduction: str = "mean",
    sample_weight: Optional[np.ndarray] = None,
) -> Tensor:
    """Cross-entropy between ``softmax(logits)`` and integer ``labels``.

    Parameters
    ----------
    logits:
        ``(batch, classes)`` unnormalized scores.
    labels:
        ``(batch,)`` integer class indices.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    sample_weight:
        Optional per-sample weights, applied before the reduction.

    Returns
    -------
    Tensor
        Scalar loss (or per-sample loss vector when ``reduction="none"``).
    """
    logits = as_tensor(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )

    batch = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    per_sample = -log_probs[np.arange(batch), labels]
    if sample_weight is not None:
        per_sample = per_sample * sample_weight

    softmax_vals = np.exp(log_probs)

    if reduction == "mean":
        out_data = per_sample.mean()
    elif reduction == "sum":
        out_data = per_sample.sum()
    elif reduction == "none":
        out_data = per_sample
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad: np.ndarray) -> None:
        base = softmax_vals.copy()
        base[np.arange(batch), labels] -= 1.0
        if sample_weight is not None:
            base *= np.asarray(sample_weight)[:, None]
        if reduction == "mean":
            g = base * (grad / batch)
        elif reduction == "sum":
            g = base * grad
        else:  # per-sample
            g = base * np.asarray(grad)[:, None]
        logits._accumulate(g)

    if logits.requires_grad or logits._parents:
        return Tensor(out_data, _parents=(logits,), _backward_fn=backward)
    return Tensor(out_data)


def binary_cross_entropy_with_logits(
    logits: Tensor, labels: np.ndarray, reduction: str = "mean"
) -> Tensor:
    """Binary cross-entropy on raw logits, numerically stable.

    Uses the identity
    ``BCE(x, y) = max(x, 0) - x*y + log(1 + exp(-|x|))``.

    Parameters
    ----------
    logits:
        Arbitrary-shape raw scores.
    labels:
        Same-shape array of {0, 1} targets (floats allowed).
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    logits = as_tensor(logits)
    y = np.asarray(labels, dtype=np.float64)
    x = logits.data
    per_elem = np.maximum(x, 0.0) - x * y + np.log1p(np.exp(-np.abs(x)))

    sigma = np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.abs(x))),
        np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))),
    )

    if reduction == "mean":
        out_data = per_elem.mean()
    elif reduction == "sum":
        out_data = per_elem.sum()
    elif reduction == "none":
        out_data = per_elem
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad: np.ndarray) -> None:
        base = sigma - y
        if reduction == "mean":
            g = base * (grad / per_elem.size)
        elif reduction == "sum":
            g = base * grad
        else:
            g = base * np.asarray(grad)
        logits._accumulate(g)

    if logits.requires_grad or logits._parents:
        return Tensor(out_data, _parents=(logits,), _backward_fn=backward)
    return Tensor(out_data)


def mse_loss(pred: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Mean squared error between ``pred`` and a constant ``target``."""
    pred = as_tensor(pred)
    diff = ops.sub(pred, Tensor(np.asarray(target, dtype=np.float64)))
    sq = ops.mul(diff, diff)
    if reduction == "mean":
        return ops.mean(sq)
    if reduction == "sum":
        return ops.sum_(sq)
    if reduction == "none":
        return sq
    raise ValueError(f"unknown reduction {reduction!r}")


def l2_norm_squared(t: Tensor) -> Tensor:
    """Squared Euclidean norm ``sum(t**2)`` of a tensor of any shape."""
    t = as_tensor(t)
    return ops.sum_(ops.mul(t, t))


class _LayerTape:
    """Saved activations and gradient scratch for one LSTM layer."""

    def __init__(self, T: int, B: int, in_size: int, hidden: int) -> None:
        H = hidden
        # Rows 0 of ``h``/``c`` hold the zero initial state, so ``h[t]`` is
        # the state *entering* step ``t`` and ``h[1:]`` the output sequence.
        self.h = np.zeros((T + 1, B, H))
        self.c = np.zeros((T + 1, B, H))
        self.tanh_c = np.empty((T, B, H))
        # Post-nonlinearity gate values in the kernel's internal column
        # order [i, f, o, g] (see ``fused_lstm``), one buffer per step.
        self.gates = np.empty((T, B, 4 * H))
        # Internally-permuted parameter copies and gradient scratch: ``*_p``
        # buffers hold the [i, f, o, g] layout, the others the external
        # [i, f, g, o] layout accumulated into the parameter tensors.
        self.w_x_p = np.empty((in_size, 4 * H))
        self.w_h_p = np.empty((H, 4 * H))
        self.b_p = np.empty(4 * H)
        self.d_wx_p = np.empty((in_size, 4 * H))
        self.d_wh_p = np.empty((H, 4 * H))
        self.d_b_p = np.empty(4 * H)
        self.d_wx = np.empty((in_size, 4 * H))
        self.d_wh = np.empty((H, 4 * H))
        self.d_b = np.empty(4 * H)


class FusedLSTMWorkspace:
    """Reusable activation tape for :func:`fused_lstm`.

    One workspace amortizes all per-call allocation across the minibatches
    and local epochs of a solve: buffers are keyed by the call shape
    ``(T, B, in, hidden, layers)`` and reused whenever it recurs (mini-batch
    shapes repeat within an epoch; evaluation blocks repeat across rounds).

    A workspace's buffers are *live* between a forward call and its
    backward: running another forward through the same workspace overwrites
    the tape, so a still-pending backward from the earlier call would read
    garbage.  :func:`fused_lstm` stamps each forward with a generation
    counter and the backward closure refuses to run against a recycled
    tape rather than silently corrupting gradients.
    """

    def __init__(self) -> None:
        self._tapes: dict = {}
        self.generation = 0

    def acquire(self, T: int, B: int, in_size: int, hidden: int, layers: int):
        """Buffers for one call shape, allocating on first use."""
        key = (T, B, in_size, hidden, layers)
        state = self._tapes.get(key)
        if state is None:
            H = hidden
            state = {
                "layers": [
                    _LayerTape(T, B, in_size if l == 0 else H, H)
                    for l in range(layers)
                ],
                "x_tm": np.empty((T, B, in_size)),  # time-major input copy
                "tmp4h": np.empty((B, 4 * H)),
                "tmp3h": np.empty((B, 3 * H)),
                "tmph": np.empty((B, H)),
                # Column permutation [i, f, g, o] -> [i, f, o, g]: swapping
                # the last two blocks is an involution, so the same index
                # array maps external->internal and back.
                "perm": np.concatenate(
                    [
                        np.arange(2 * H),
                        np.arange(3 * H, 4 * H),
                        np.arange(2 * H, 3 * H),
                    ]
                ),
                "dh": np.empty((B, H)),
                "dc": np.empty((B, H)),
                "dgates": np.empty((T, B, 4 * H)),
                "dseq_a": np.empty((T, B, H)),
                "dseq_b": np.empty((T, B, H)),
                "dx0": np.empty((T, B, in_size)),
            }
            self._tapes[key] = state
        self.generation += 1
        return state


def _sigmoid_inplace(a: np.ndarray) -> None:
    """Numerically stable in-place logistic sigmoid via tanh.

    ``sigmoid(x) = (tanh(x/2) + 1) / 2`` is finite for any ``x`` and needs
    no temporaries, unlike the exp-based split form.
    """
    a *= 0.5
    np.tanh(a, out=a)
    a += 1.0
    a *= 0.5


def fused_lstm(
    x,
    layers: Sequence[Tuple[Tensor, Tensor, Tensor]],
    workspace: Optional[FusedLSTMWorkspace] = None,
    return_sequence: bool = False,
) -> Tensor:
    """Unrolled multi-layer LSTM with hand-derived forward/backward.

    Semantically identical to running :class:`repro.nn.recurrent.LSTM`
    (zero initial state, gate layout ``[input, forget, cell, output]``,
    same association order of the pre-activation sums), but executed as
    fused NumPy kernels: the input contribution ``X @ W_x`` of all ``T``
    steps is one GEMM per layer, each step touches a single
    ``(batch, 4*hidden)`` gate buffer, and the backward sweep stores
    per-step gate gradients so ``dW_x`` / ``dW_h`` / ``db`` reduce to one
    fused GEMM each over the ``(T*batch, ·)`` stack.

    Internally the kernel permutes the gate columns to ``[i, f, o, g]`` (a
    per-column relabeling, so every value is bit-identical to the external
    ``[i, f, g, o]`` layout): the three sigmoid gates then form one
    contiguous block, letting each step apply the sigmoid — and its
    derivative factor in backward — with a single fused slice operation
    instead of one per gate.  Parameters and their gradients cross the
    boundary through ``np.take`` with preallocated buffers; the swap is its
    own inverse.

    Parameters
    ----------
    x:
        ``(batch, time, in_size)`` input — an ndarray or a Tensor (e.g. an
        embedding lookup); gradients propagate into a Tensor input that
        participates in the graph.
    layers:
        One ``(w_x, w_h, bias)`` parameter triple per layer, with shapes
        ``(in, 4H)`` / ``(H, 4H)`` / ``(4H,)`` — exactly the parameters of
        :class:`repro.nn.recurrent.LSTMCell`.
    workspace:
        Activation tape reused across calls (see
        :class:`FusedLSTMWorkspace`); a private one is allocated per call
        when omitted.
    return_sequence:
        Return all top-layer hidden states ``(batch, time, hidden)``
        instead of the final state ``(batch, hidden)``.

    Returns
    -------
    Tensor
        The top layer's final hidden state (or full sequence), wired into
        the autograd graph as a single node.
    """
    x_t = as_tensor(x)
    xd = x_t.data
    if xd.ndim != 3:
        raise ValueError(f"expected (batch, time, features), got {xd.shape}")
    if not layers:
        raise ValueError("fused_lstm needs at least one layer")
    B, T, in_size = xd.shape
    H = layers[0][1].shape[0]
    for l, (w_x, w_h, b) in enumerate(layers):
        expect_in = in_size if l == 0 else H
        if w_x.shape != (expect_in, 4 * H) or w_h.shape != (H, 4 * H) or b.shape != (4 * H,):
            raise ValueError(
                f"layer {l}: expected shapes ({expect_in}, {4*H}) / "
                f"({H}, {4*H}) / ({4*H},), got {w_x.shape} / {w_h.shape} / {b.shape}"
            )

    ws = workspace if workspace is not None else FusedLSTMWorkspace()
    st = ws.acquire(T, B, in_size, H, len(layers))
    generation = ws.generation

    # Forward --------------------------------------------------------------- #
    x_tm = st["x_tm"]
    np.copyto(x_tm, xd.transpose(1, 0, 2))
    tmp4h = st["tmp4h"]
    tmph = st["tmph"]
    perm = st["perm"]
    inp = x_tm
    for l, (w_x, w_h, b) in enumerate(layers):
        tape = st["layers"][l]
        gates, h, c = tape.gates, tape.h, tape.c
        # Parameters in the internal [i, f, o, g] column order.
        np.take(w_x.data, perm, axis=1, out=tape.w_x_p)
        np.take(w_h.data, perm, axis=1, out=tape.w_h_p)
        np.take(b.data, perm, out=tape.b_p)
        np.matmul(inp.reshape(T * B, -1), tape.w_x_p, out=gates.reshape(T * B, 4 * H))
        gates += tape.b_p  # one broadcast add for all T steps
        h[0].fill(0.0)
        c[0].fill(0.0)
        w_h_p = tape.w_h_p
        for t in range(T):
            g_t = gates[t]
            np.matmul(h[t], w_h_p, out=tmp4h)
            g_t += tmp4h
            _sigmoid_inplace(g_t[:, : 3 * H])       # input, forget, output
            np.tanh(g_t[:, 3 * H :], out=g_t[:, 3 * H :])  # cell candidate
            c_next = c[t + 1]
            np.multiply(g_t[:, H : 2 * H], c[t], out=c_next)   # f * c_prev
            np.multiply(g_t[:, :H], g_t[:, 3 * H :], out=tmph)  # i * g
            c_next += tmph
            np.tanh(c_next, out=tape.tanh_c[t])
            np.multiply(g_t[:, 2 * H : 3 * H], tape.tanh_c[t], out=h[t + 1])
        inp = h[1:]

    top = st["layers"][-1]
    if return_sequence:
        out_data = np.ascontiguousarray(top.h[1:].transpose(1, 0, 2))
    else:
        out_data = top.h[T].copy()

    x_in_graph = x_t.requires_grad or bool(x_t._parents)
    parents = [p for triple in layers for p in triple]
    if x_in_graph:
        parents.append(x_t)
    if not any(p.requires_grad or p._parents for p in parents):
        return Tensor(out_data)

    # Backward -------------------------------------------------------------- #
    def backward(grad: np.ndarray) -> None:
        if ws.generation != generation:
            raise RuntimeError(
                "fused_lstm backward ran against a recycled workspace: "
                "another forward reused the activation tape before this "
                "node's backward pass (run backward before the next forward, "
                "or give each concurrent graph its own workspace)"
            )
        dgates = st["dgates"]
        dh, dc = st["dh"], st["dc"]
        tmp = st["tmph"]
        tmp3h = st["tmp3h"]
        perm = st["perm"]
        dseq = st["dseq_a"]
        if return_sequence:
            np.copyto(dseq, np.asarray(grad).transpose(1, 0, 2))
        else:
            dseq.fill(0.0)
            dseq[T - 1] = grad
        for l in range(len(layers) - 1, -1, -1):
            w_x, w_h, b = layers[l]
            tape = st["layers"][l]
            gates, h, c, tanh_c = tape.gates, tape.h, tape.c, tape.tanh_c
            dh.fill(0.0)
            dc.fill(0.0)
            w_h_p = tape.w_h_p
            for t in range(T - 1, -1, -1):
                dh += dseq[t]
                g_t = gates[t]
                i_g = g_t[:, :H]
                f_g = g_t[:, H : 2 * H]
                o_g = g_t[:, 2 * H : 3 * H]
                g_g = g_t[:, 3 * H :]
                dg_t = dgates[t]
                # dc += dh * o * (1 - tanh(c)^2)
                np.multiply(tanh_c[t], tanh_c[t], out=tmp)
                np.subtract(1.0, tmp, out=tmp)
                tmp *= o_g
                tmp *= dh
                dc += tmp
                # Loss gradients w.r.t. the three sigmoid gate *values*...
                np.multiply(dc, g_g, out=dg_t[:, :H])              # input
                np.multiply(dc, c[t], out=dg_t[:, H : 2 * H])      # forget
                np.multiply(dh, tanh_c[t], out=dg_t[:, 2 * H : 3 * H])  # out
                # ...through one fused sigmoid derivative s*(1-s) over the
                # contiguous [i, f, o] block.
                np.subtract(1.0, g_t[:, : 3 * H], out=tmp3h)
                tmp3h *= g_t[:, : 3 * H]
                dg_t[:, : 3 * H] *= tmp3h
                # cell gate: dc * i * (1 - g^2)
                da_g = dg_t[:, 3 * H :]
                np.multiply(g_g, g_g, out=tmp)
                np.subtract(1.0, tmp, out=tmp)
                np.multiply(dc, tmp, out=da_g)
                da_g *= i_g
                # carry to step t-1
                dc *= f_g
                np.matmul(dg_t, w_h_p.T, out=dh)
            # Fused parameter accumulation: one GEMM per matrix over the
            # whole (T*B, .) stack instead of T rank-B updates, un-permuted
            # back to the external [i, f, g, o] column order.
            inp_l = x_tm if l == 0 else st["layers"][l - 1].h[1:]
            flat_dg = dgates.reshape(T * B, 4 * H)
            np.matmul(
                inp_l.reshape(T * B, -1).T, flat_dg, out=tape.d_wx_p
            )
            np.matmul(h[:T].reshape(T * B, H).T, flat_dg, out=tape.d_wh_p)
            flat_dg.sum(axis=0, out=tape.d_b_p)
            np.take(tape.d_wx_p, perm, axis=1, out=tape.d_wx)
            np.take(tape.d_wh_p, perm, axis=1, out=tape.d_wh)
            np.take(tape.d_b_p, perm, out=tape.d_b)
            w_x._accumulate(tape.d_wx)
            w_h._accumulate(tape.d_wh)
            b._accumulate(tape.d_b)
            if l > 0:
                nxt = st["dseq_b"] if dseq is st["dseq_a"] else st["dseq_a"]
                np.matmul(flat_dg, tape.w_x_p.T, out=nxt.reshape(T * B, H))
                dseq = nxt
            elif x_in_graph:
                dx0 = st["dx0"]
                np.matmul(flat_dg, tape.w_x_p.T, out=dx0.reshape(T * B, in_size))
                x_t._accumulate(dx0.transpose(1, 0, 2))

    return Tensor(out_data, _parents=tuple(parents), _backward_fn=backward)
