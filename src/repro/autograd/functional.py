"""Composite differentiable functions built on the primitive ops.

These are the loss functions and fused operations used by the model zoo.
Fusing softmax with cross-entropy keeps the backward pass numerically
stable and cheap (the classic ``softmax - onehot`` gradient).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import ops
from .tensor import Tensor, as_tensor


def softmax_cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    reduction: str = "mean",
    sample_weight: Optional[np.ndarray] = None,
) -> Tensor:
    """Cross-entropy between ``softmax(logits)`` and integer ``labels``.

    Parameters
    ----------
    logits:
        ``(batch, classes)`` unnormalized scores.
    labels:
        ``(batch,)`` integer class indices.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    sample_weight:
        Optional per-sample weights, applied before the reduction.

    Returns
    -------
    Tensor
        Scalar loss (or per-sample loss vector when ``reduction="none"``).
    """
    logits = as_tensor(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )

    batch = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    per_sample = -log_probs[np.arange(batch), labels]
    if sample_weight is not None:
        per_sample = per_sample * sample_weight

    softmax_vals = np.exp(log_probs)

    if reduction == "mean":
        out_data = per_sample.mean()
    elif reduction == "sum":
        out_data = per_sample.sum()
    elif reduction == "none":
        out_data = per_sample
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad: np.ndarray) -> None:
        base = softmax_vals.copy()
        base[np.arange(batch), labels] -= 1.0
        if sample_weight is not None:
            base *= np.asarray(sample_weight)[:, None]
        if reduction == "mean":
            g = base * (grad / batch)
        elif reduction == "sum":
            g = base * grad
        else:  # per-sample
            g = base * np.asarray(grad)[:, None]
        logits._accumulate(g)

    if logits.requires_grad or logits._parents:
        return Tensor(out_data, _parents=(logits,), _backward_fn=backward)
    return Tensor(out_data)


def binary_cross_entropy_with_logits(
    logits: Tensor, labels: np.ndarray, reduction: str = "mean"
) -> Tensor:
    """Binary cross-entropy on raw logits, numerically stable.

    Uses the identity
    ``BCE(x, y) = max(x, 0) - x*y + log(1 + exp(-|x|))``.

    Parameters
    ----------
    logits:
        Arbitrary-shape raw scores.
    labels:
        Same-shape array of {0, 1} targets (floats allowed).
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    logits = as_tensor(logits)
    y = np.asarray(labels, dtype=np.float64)
    x = logits.data
    per_elem = np.maximum(x, 0.0) - x * y + np.log1p(np.exp(-np.abs(x)))

    sigma = np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.abs(x))),
        np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))),
    )

    if reduction == "mean":
        out_data = per_elem.mean()
    elif reduction == "sum":
        out_data = per_elem.sum()
    elif reduction == "none":
        out_data = per_elem
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad: np.ndarray) -> None:
        base = sigma - y
        if reduction == "mean":
            g = base * (grad / per_elem.size)
        elif reduction == "sum":
            g = base * grad
        else:
            g = base * np.asarray(grad)
        logits._accumulate(g)

    if logits.requires_grad or logits._parents:
        return Tensor(out_data, _parents=(logits,), _backward_fn=backward)
    return Tensor(out_data)


def mse_loss(pred: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Mean squared error between ``pred`` and a constant ``target``."""
    pred = as_tensor(pred)
    diff = ops.sub(pred, Tensor(np.asarray(target, dtype=np.float64)))
    sq = ops.mul(diff, diff)
    if reduction == "mean":
        return ops.mean(sq)
    if reduction == "sum":
        return ops.sum_(sq)
    if reduction == "none":
        return sq
    raise ValueError(f"unknown reduction {reduction!r}")


def l2_norm_squared(t: Tensor) -> Tensor:
    """Squared Euclidean norm ``sum(t**2)`` of a tensor of any shape."""
    t = as_tensor(t)
    return ops.sum_(ops.mul(t, t))
