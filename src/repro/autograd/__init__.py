"""Minimal reverse-mode automatic differentiation engine.

This subpackage stands in for the TensorFlow substrate used by the original
FedProx implementation.  It provides a :class:`Tensor` type, a library of
differentiable operations, fused loss functions, and finite-difference
gradient checking.
"""

from .tensor import Tensor, as_tensor, unbroadcast
from . import ops
from .ops import (
    add,
    clip,
    concatenate,
    div,
    embedding,
    exp,
    getitem,
    log,
    log_softmax,
    matmul,
    max_,
    mean,
    mul,
    neg,
    power,
    relu,
    reshape,
    sigmoid,
    softmax,
    stack,
    sub,
    sum_,
    tanh,
    transpose,
)
from .functional import (
    FusedLSTMWorkspace,
    binary_cross_entropy_with_logits,
    fused_lstm,
    l2_norm_squared,
    mse_loss,
    softmax_cross_entropy,
)
from .gradcheck import check_gradients, numeric_gradient
from .stacked_lstm import (
    StackedLSTMWorkspace,
    stacked_lstm_backward,
    stacked_lstm_forward,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "unbroadcast",
    "ops",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "power",
    "exp",
    "log",
    "tanh",
    "sigmoid",
    "relu",
    "clip",
    "matmul",
    "sum_",
    "mean",
    "max_",
    "reshape",
    "transpose",
    "getitem",
    "concatenate",
    "stack",
    "log_softmax",
    "softmax",
    "embedding",
    "softmax_cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "l2_norm_squared",
    "fused_lstm",
    "FusedLSTMWorkspace",
    "StackedLSTMWorkspace",
    "stacked_lstm_forward",
    "stacked_lstm_backward",
    "check_gradients",
    "numeric_gradient",
]
