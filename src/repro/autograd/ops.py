"""Differentiable operations on :class:`~repro.autograd.tensor.Tensor`.

Each function builds the forward result eagerly and attaches a backward
closure that distributes the incoming gradient to the operation's parents.
Gradient formulas follow the standard calculus; broadcasting is handled by
:func:`~repro.autograd.tensor.unbroadcast`.

Only tensors with ``requires_grad=True`` somewhere in their ancestry
propagate gradients; constant operands are folded into the closure without
creating graph edges.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import ArrayLike, Tensor, as_tensor, unbroadcast


def _needs_grad(*tensors: Tensor) -> bool:
    """True if any operand participates in gradient computation."""
    return any(t.requires_grad or t._parents for t in tensors)


def _make(
    data: np.ndarray, parents: Tuple[Tensor, ...], backward_fn
) -> Tensor:
    """Construct a result tensor, attaching graph edges only when needed."""
    if _needs_grad(*parents):
        return Tensor(data, _parents=parents, _backward_fn=backward_fn)
    return Tensor(data)


# --------------------------------------------------------------------- #
# Elementwise arithmetic
# --------------------------------------------------------------------- #
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Element-wise ``a + b`` with NumPy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad, a.shape))
        b._accumulate(unbroadcast(grad, b.shape))

    return _make(out_data, (a, b), backward)


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Element-wise ``a - b`` with NumPy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad, a.shape))
        b._accumulate(unbroadcast(-grad, b.shape))

    return _make(out_data, (a, b), backward)


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Element-wise ``a * b`` with NumPy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad * b.data, a.shape))
        b._accumulate(unbroadcast(grad * a.data, b.shape))

    return _make(out_data, (a, b), backward)


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Element-wise ``a / b`` with NumPy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad / b.data, a.shape))
        b._accumulate(unbroadcast(-grad * a.data / (b.data**2), b.shape))

    return _make(out_data, (a, b), backward)


def neg(a: Tensor) -> Tensor:
    """Element-wise negation ``-a``."""
    a = as_tensor(a)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(-grad)

    return _make(-a.data, (a,), backward)


def power(a: Tensor, exponent: float) -> Tensor:
    """Element-wise power ``a ** exponent`` for a scalar exponent."""
    a = as_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("power() supports scalar exponents only")
    out_data = a.data**exponent

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * exponent * a.data ** (exponent - 1))

    return _make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# Elementwise nonlinearities
# --------------------------------------------------------------------- #
def exp(a: Tensor) -> Tensor:
    """Element-wise exponential."""
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data)

    return _make(out_data, (a,), backward)


def log(a: Tensor) -> Tensor:
    """Element-wise natural logarithm."""
    a = as_tensor(a)
    out_data = np.log(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad / a.data)

    return _make(out_data, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    """Element-wise hyperbolic tangent."""
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * (1.0 - out_data**2))

    return _make(out_data, (a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    """Element-wise logistic sigmoid, computed stably for large |x|."""
    a = as_tensor(a)
    x = a.data
    out_data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))),
                        np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data * (1.0 - out_data))

    return _make(out_data, (a,), backward)


def relu(a: Tensor) -> Tensor:
    """Element-wise rectified linear unit ``max(a, 0)``."""
    a = as_tensor(a)
    mask = a.data > 0
    out_data = np.where(mask, a.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)

    return _make(out_data, (a,), backward)


def clip(a: Tensor, low: float, high: float) -> Tensor:
    """Element-wise clamp of values into ``[low, high]``.

    The gradient is passed through only where values were not clipped
    (sub-gradient convention).
    """
    a = as_tensor(a)
    out_data = np.clip(a.data, low, high)
    mask = (a.data > low) & (a.data < high)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)

    return _make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# Linear algebra
# --------------------------------------------------------------------- #
def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product ``a @ b`` for 2-D operands (or 1-D vectors).

    Supports the standard NumPy 1-D/2-D promotion rules.  Batched (>2-D)
    matmul is not needed by this codebase and is rejected explicitly.
    """
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim > 2 or b.ndim > 2:
        raise ValueError("matmul supports only 1-D and 2-D tensors")
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        ga: np.ndarray
        gb: np.ndarray
        if a.ndim == 1 and b.ndim == 1:  # inner product -> scalar grad
            ga = grad * b.data
            gb = grad * a.data
        elif a.ndim == 1:  # (k,) @ (k, n) -> (n,)
            ga = b.data @ grad
            gb = np.outer(a.data, grad)
        elif b.ndim == 1:  # (m, k) @ (k,) -> (m,)
            ga = np.outer(grad, b.data)
            gb = a.data.T @ grad
        else:  # (m, k) @ (k, n)
            ga = grad @ b.data.T
            gb = a.data.T @ grad
        a._accumulate(ga)
        b._accumulate(gb)

    return _make(out_data, (a, b), backward)


# --------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------- #
def sum_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Sum of elements over ``axis`` (all elements when ``None``)."""
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        g = grad
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        a._accumulate(np.broadcast_to(g, a.shape).copy())

    return _make(out_data, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Arithmetic mean over ``axis`` (all elements when ``None``)."""
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.shape[ax] for ax in axes]))

    def backward(grad: np.ndarray) -> None:
        g = grad / count
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        a._accumulate(np.broadcast_to(g, a.shape).copy())

    return _make(out_data, (a,), backward)


def max_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Maximum over ``axis``; gradient flows to the (first) argmax entries.

    Ties split the gradient equally among tied maxima, which matches the
    sub-gradient convention used by mainstream frameworks.
    """
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        expanded = a.data.max(axis=axis, keepdims=True)
        mask = (a.data == expanded).astype(np.float64)
        mask /= mask.sum(axis=axis, keepdims=True)
        g = grad
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        a._accumulate(mask * g)

    return _make(out_data, (a,), backward)


# --------------------------------------------------------------------- #
# Shape manipulation
# --------------------------------------------------------------------- #
def reshape(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    """View the tensor with a new shape (same number of elements)."""
    a = as_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad.reshape(a.shape))

    return _make(out_data, (a,), backward)


def transpose(a: Tensor, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    """Permute dimensions (reversed when ``axes`` is ``None``)."""
    a = as_tensor(a)
    out_data = a.data.transpose(axes)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad.transpose(inverse))

    return _make(out_data, (a,), backward)


def getitem(a: Tensor, index) -> Tensor:
    """Basic and advanced indexing; gradient scatters back with accumulation.

    Uses ``np.add.at`` so that repeated indices (as produced by embedding
    lookups) accumulate correctly.
    """
    a = as_tensor(a)
    out_data = a.data[index]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(a.data, dtype=np.float64)
        np.add.at(full, index, grad)
        a._accumulate(full)

    return _make(out_data, (a,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Join tensors along an existing axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            t._accumulate(grad[tuple(slicer)])

    return _make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Join tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            t._accumulate(np.take(grad, i, axis=axis))

    return _make(out_data, tuple(tensors), backward)


# --------------------------------------------------------------------- #
# Softmax family
# --------------------------------------------------------------------- #
def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(a))`` along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    softmax_vals = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad - softmax_vals * grad.sum(axis=axis, keepdims=True))

    return _make(out_data, (a,), backward)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        a._accumulate(out_data * (grad - dot))

    return _make(out_data, (a,), backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` by integer ``indices``.

    Parameters
    ----------
    weight:
        ``(vocab, dim)`` embedding matrix.
    indices:
        Integer array of any shape; the result has shape
        ``indices.shape + (dim,)``.
    """
    weight = as_tensor(weight)
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError("embedding indices must be integers")
    out_data = weight.data[idx]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data, dtype=np.float64)
        np.add.at(full, idx.reshape(-1), grad.reshape(-1, weight.shape[1]))
        weight._accumulate(full)

    return _make(out_data, (weight,), backward)
