"""Numeric gradient checking utilities.

Used throughout the test suite to verify every autograd operation and every
model gradient against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central finite-difference gradient of a scalar function.

    Parameters
    ----------
    fn:
        Maps an array of ``x.shape`` to a Python float.
    x:
        Point at which to evaluate the gradient.
    eps:
        Perturbation half-width.

    Returns
    -------
    numpy.ndarray
        Approximate gradient, same shape as ``x``.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = fn(x)
        flat[i] = orig - eps
        f_minus = fn(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> None:
    """Assert that autograd gradients of ``fn`` match finite differences.

    Parameters
    ----------
    fn:
        Takes a list of :class:`Tensor` inputs and returns a scalar Tensor.
    inputs:
        Arrays for each input; all are treated as differentiable.
    eps, rtol, atol:
        Finite-difference step and comparison tolerances.

    Raises
    ------
    AssertionError
        If any analytic gradient deviates from the numeric one.
    """
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(tensors)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued fn")
    out.backward()
    analytic = [
        t.grad if t.grad is not None else np.zeros_like(t.data) for t in tensors
    ]

    for i, x in enumerate(inputs):
        def scalar_fn(xi: np.ndarray, i: int = i) -> float:
            args = [
                Tensor(xi if j == i else np.asarray(inputs[j], dtype=np.float64))
                for j in range(len(inputs))
            ]
            return float(fn(args).data)

        numeric = numeric_gradient(scalar_fn, np.asarray(x, dtype=np.float64), eps=eps)
        if not np.allclose(analytic[i], numeric, rtol=rtol, atol=atol):
            max_err = np.abs(analytic[i] - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs error {max_err:.3e}\n"
                f"analytic:\n{analytic[i]}\nnumeric:\n{numeric}"
            )
