"""Reverse-mode automatic differentiation over NumPy arrays.

This module provides the :class:`Tensor` class — a thin wrapper around
``numpy.ndarray`` that records a computational graph as operations are
applied and supports reverse-mode differentiation via :meth:`Tensor.backward`.

The engine is deliberately small: it implements exactly the operations
needed by the neural models in :mod:`repro.models` (dense layers, LSTMs,
embeddings, softmax cross-entropy).  Every operation's gradient is verified
against central finite differences in the test suite
(``tests/test_autograd_ops.py``).

Design notes
------------
* Graphs are built eagerly.  Each ``Tensor`` produced by an operation holds
  references to its parent tensors and a closure that accumulates gradients
  into those parents.
* Gradients are plain ``numpy.ndarray`` objects (not Tensors); higher-order
  differentiation is out of scope for this reproduction.
* Broadcasting follows NumPy semantics; gradients are un-broadcast by
  summing over the broadcast axes (see :func:`unbroadcast`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``, inverting NumPy broadcasting.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the incoming
    gradient over every broadcast axis.

    Parameters
    ----------
    grad:
        Gradient with respect to the broadcast result.
    shape:
        The original (pre-broadcast) shape of the operand.

    Returns
    -------
    numpy.ndarray
        Gradient with respect to the original operand, of shape ``shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor that records operations for backpropagation.

    Parameters
    ----------
    data:
        Array-like payload.  Converted to ``float64`` unless it is already a
        floating ndarray.
    requires_grad:
        If ``True``, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.

    Attributes
    ----------
    data : numpy.ndarray
        The underlying array.
    grad : numpy.ndarray or None
        Accumulated gradient, same shape as ``data``.  ``None`` until a
        backward pass touches this tensor.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_parents",
        "_backward_fn",
        "_grad_buffer",
        "_cached_order",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward_fn: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        if isinstance(data, Tensor):  # defensive: unwrap accidental nesting
            data = data.data
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = _parents
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = _backward_fn
        # Reused across backward passes so long-lived tensors (parameters)
        # never reallocate their gradient storage.
        self._grad_buffer: Optional[np.ndarray] = None
        self._cached_order: Optional[list] = None

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def T(self) -> "Tensor":
        """Matrix transpose (alias for :meth:`transpose` with no axes)."""
        return self.transpose()

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------ #
    # Graph machinery
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer.

        Constant leaves (``requires_grad=False`` and no parents) discard
        incoming gradients — they neither store nor propagate them.

        The first contribution of a backward pass is *copied* into a
        preallocated per-tensor buffer (allocated once, reused across
        passes) rather than added onto a freshly zeroed array; subsequent
        contributions accumulate in place.  This removes one allocation and
        one full array pass per touched node per backward.
        """
        if not (self.requires_grad or self._parents):
            return
        if self.grad is None:
            buf = self._grad_buffer
            if buf is None or buf.shape != self.data.shape:
                buf = np.empty(self.data.shape, dtype=np.float64)
                self._grad_buffer = buf
            np.copyto(buf, grad)
            self.grad = buf
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``.

        The underlying buffer is kept and reused by the next backward pass;
        callers that need to retain a gradient across passes should copy it
        first.
        """
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1.0`` for scalar tensors; required
            for non-scalar outputs.

        Raises
        ------
        ValueError
            If this tensor is non-scalar and no seed gradient is given.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() on a non-scalar tensor requires an explicit "
                    f"seed gradient (shape {self.shape})"
                )
            grad = np.ones_like(self.data, dtype=np.float64)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} does not match tensor "
                    f"shape {self.shape}"
                )

        # A tensor's parents are fixed at construction, so the traversal
        # order from a given root never changes — cache it so repeated
        # backward calls on the same graph skip the graph walk.
        order = self._cached_order
        if order is None:
            order = self._toposort()
            if self._parents:
                self._cached_order = order
        self._accumulate(grad)
        for node in order:
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    def _toposort(self) -> list:
        """Return graph nodes in reverse topological order from ``self``."""
        visited: set = set()
        order: list = []

        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------ #
    # Operator overloads (implementations live in repro.autograd.ops)
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.add(self, other)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.add(other, self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.sub(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.mul(self, other)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.mul(other, self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.div(other, self)

    def __neg__(self) -> "Tensor":
        from . import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from . import ops

        return ops.power(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from . import ops

        return ops.matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        from . import ops

        return ops.getitem(self, index)

    # Named methods ----------------------------------------------------- #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum of elements along ``axis`` (all elements if ``None``)."""
        from . import ops

        return ops.sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean along ``axis`` (all elements if ``None``)."""
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        """Return a tensor with the same data viewed with a new shape."""
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        """Permute dimensions (reverse them if ``axes`` is ``None``)."""
        from . import ops

        return ops.transpose(self, axes)

    def exp(self) -> "Tensor":
        """Element-wise exponential."""
        from . import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        """Element-wise natural logarithm."""
        from . import ops

        return ops.log(self)

    def tanh(self) -> "Tensor":
        """Element-wise hyperbolic tangent."""
        from . import ops

        return ops.tanh(self)

    def sigmoid(self) -> "Tensor":
        """Element-wise logistic sigmoid."""
        from . import ops

        return ops.sigmoid(self)

    def relu(self) -> "Tensor":
        """Element-wise rectified linear unit."""
        from . import ops

        return ops.relu(self)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op if already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def parameters_of(tensors: Iterable[Tensor]) -> list:
    """Filter an iterable down to tensors with ``requires_grad=True``."""
    return [t for t in tensors if isinstance(t, Tensor) and t.requires_grad]
