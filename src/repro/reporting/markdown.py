"""Markdown report generation for figure results.

Turns a :class:`~repro.experiments.results.FigureResult` into the
per-experiment sections of EXPERIMENTS.md: a summary table per panel plus a
compact sparkline of each loss series.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .ascii_plot import sparkline


def markdown_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "*(no rows)*"
    # Union of columns across rows, in order of first appearance (rows may
    # carry extra metric columns, e.g. dissimilarity tracked on one method).
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(c)) for c in columns) + " |")
    return "\n".join(lines)


def figure_result_markdown(result, include_accuracy: bool = True) -> str:
    """One markdown section per panel of a figure result.

    Parameters
    ----------
    result:
        A :class:`~repro.experiments.results.FigureResult`.
    include_accuracy:
        Add final/best accuracy columns where recorded.
    """
    blocks: List[str] = [f"### {result.figure_id}\n", f"{result.description}\n"]
    for panel in result.panels:
        blocks.append(f"**{panel.title()}**\n")
        rows = []
        for label, history in panel.histories.items():
            row: Dict[str, object] = {
                "method": label,
                "loss trend": f"`{sparkline(history.train_losses, width=20)}`",
                "first loss": history.train_losses[0],
                "final loss": history.final_train_loss(),
            }
            if include_accuracy and history.test_accuracies:
                row["final acc"] = history.final_test_accuracy()
                row["best acc"] = history.best_test_accuracy()
            if history.dissimilarities:
                row["final grad-var"] = history.dissimilarities[-1]
            rows.append(row)
        blocks.append(markdown_table(rows))
        blocks.append("")
    return "\n".join(blocks)
