"""ASCII line charts.

The offline environment has no plotting library, so figure benchmarks
render their series as compact ASCII charts (plus CSV-ready tables via
:mod:`repro.reporting.tables`).  Charts are deliberately simple: one
character per series, last-writer-wins on collisions, linear axes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 14,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named series as a multi-line ASCII chart.

    Parameters
    ----------
    series:
        Mapping of label -> y-values (x is the index).  Series may have
        different lengths.
    width, height:
        Plot-area size in characters.
    title, y_label:
        Optional annotations.

    Returns
    -------
    str
        The rendered chart, ending with a legend line.
    """
    if not series:
        raise ValueError("no series to plot")
    all_values = [v for ys in series.values() for v in ys if v is not None]
    if not all_values:
        raise ValueError("all series are empty")
    y_min = min(all_values)
    y_max = max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_max = max(len(ys) for ys in series.values())

    grid = [[" "] * width for _ in range(height)]
    for (label, ys), marker in zip(series.items(), _MARKERS):
        for x_idx, value in enumerate(ys):
            if value is None:
                continue
            col = int((x_idx / max(x_max - 1, 1)) * (width - 1))
            row = int((1.0 - (value - y_min) / (y_max - y_min)) * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    pad = max(len(top_label), len(bottom_label))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = top_label.rjust(pad)
        elif row_idx == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}|")
    lines.append(" " * pad + " +" + "-" * width + "+")
    lines.append(
        " " * pad
        + f"  rounds 0..{x_max - 1}"
        + (f"   ({y_label})" if y_label else "")
    )
    legend = "   ".join(
        f"{marker}={label}" for (label, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line unicode sparkline of a series (downsampled to ``width``)."""
    blocks = "▁▂▃▄▅▆▇█"
    values = [v for v in values if v is not None]
    if not values:
        return ""
    if width is not None and len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        blocks[min(int((v - lo) / span * (len(blocks) - 1)), len(blocks) - 1)]
        for v in values
    )
