"""Plain-text table formatting and CSV emission for experiment output."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render dict rows as an aligned plain-text table.

    All rows should share the first row's keys; missing values render
    empty.  Floats are shown with four significant digits.
    """
    if not rows:
        return title or "(empty table)"
    columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[fmt(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)


def series_table(
    series: Dict[str, Sequence[Optional[float]]],
    x_name: str = "round",
    every: int = 1,
) -> List[Dict[str, object]]:
    """Turn named series into dict rows (one per x), subsampled by ``every``."""
    length = max(len(v) for v in series.values())
    rows: List[Dict[str, object]] = []
    for x in range(0, length, every):
        row: Dict[str, object] = {x_name: x}
        for name, values in series.items():
            row[name] = values[x] if x < len(values) else None
        rows.append(row)
    return rows


def write_csv(
    path: Union[str, Path], rows: Sequence[Dict[str, object]]
) -> Path:
    """Write dict rows to ``path`` as CSV, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    columns = list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)
    return path


def csv_string(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as a CSV string (for logging without a file)."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()
