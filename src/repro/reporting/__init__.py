"""Plain-text reporting: ASCII charts, tables, CSV emission."""

from .ascii_plot import ascii_chart, sparkline
from .markdown import figure_result_markdown, markdown_table
from .tables import csv_string, format_table, series_table, write_csv

__all__ = [
    "ascii_chart",
    "figure_result_markdown",
    "markdown_table",
    "sparkline",
    "format_table",
    "series_table",
    "write_csv",
    "csv_string",
]
