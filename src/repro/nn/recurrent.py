"""Recurrent layers: vanilla RNN and LSTM cells plus sequence wrappers.

The paper's non-convex workloads are LSTM classifiers (Shakespeare next-char
prediction, Sent140 sentiment).  These are implemented here on top of the
autograd engine with standard formulations; the unrolled wrappers return the
full hidden-state sequence or just the final state.

Two executions of the same architecture exist:

* :class:`LSTM` — graph mode, one autograd node per op per timestep.  Slow
  but trivially auditable; this is the gradcheck reference.
* :class:`FusedLSTM` — identical parameters and initialization, but the
  unroll runs through :func:`repro.autograd.fused_lstm` (hand-derived
  forward/backward over a reusable activation tape).  Drop-in replacement:
  same flat parameter layout, same results to floating-point rounding.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..autograd import FusedLSTMWorkspace, Tensor, fused_lstm, ops
from . import init
from .module import Module, ModuleList


class RNNCell(Module):
    """Elman RNN cell: ``h' = tanh(x @ W_x + h @ W_h + b)``."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Tensor(init.glorot_uniform(rng, (input_size, hidden_size)), requires_grad=True)
        self.w_h = Tensor(init.orthogonal(rng, (hidden_size, hidden_size)), requires_grad=True)
        self.bias = Tensor(init.zeros((hidden_size,)), requires_grad=True)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        pre = ops.add(ops.add(ops.matmul(x, self.w_x), ops.matmul(h, self.w_h)), self.bias)
        return ops.tanh(pre)


class LSTMCell(Module):
    """Standard LSTM cell with a fused gate matrix.

    Gate layout along the last axis is ``[input, forget, cell, output]``.
    The forget-gate bias is initialized to 1.0, the usual trick that lets
    gradients flow early in training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Tensor(
            init.glorot_uniform(rng, (input_size, 4 * hidden_size)), requires_grad=True
        )
        self.w_h = Tensor(
            init.glorot_uniform(rng, (hidden_size, 4 * hidden_size)), requires_grad=True
        )
        bias = init.zeros((4 * hidden_size,))
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Tensor(bias, requires_grad=True)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        """One step: ``(h, c) -> (h', c')`` for a batch of inputs.

        Parameters
        ----------
        x:
            ``(batch, input_size)`` input at this time step.
        state:
            Tuple ``(h, c)`` each of shape ``(batch, hidden_size)``.
        """
        h, c = state
        hs = self.hidden_size
        gates = ops.add(
            ops.add(ops.matmul(x, self.w_x), ops.matmul(h, self.w_h)), self.bias
        )
        i = ops.sigmoid(gates[:, 0 * hs : 1 * hs])
        f = ops.sigmoid(gates[:, 1 * hs : 2 * hs])
        g = ops.tanh(gates[:, 2 * hs : 3 * hs])
        o = ops.sigmoid(gates[:, 3 * hs : 4 * hs])
        c_next = ops.add(ops.mul(f, c), ops.mul(i, g))
        h_next = ops.mul(o, ops.tanh(c_next))
        return h_next, c_next


class LSTM(Module):
    """Multi-layer LSTM unrolled over a ``(batch, time, features)`` input.

    Parameters
    ----------
    input_size:
        Feature width of the input sequence.
    hidden_size:
        Hidden width of every layer.
    num_layers:
        Number of stacked LSTM layers.
    rng:
        Generator for weight initialization.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        cells: List[LSTMCell] = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cells.append(LSTMCell(in_size, hidden_size, rng))
        self.cells = ModuleList(cells)

    def forward(
        self, x: Tensor, return_sequence: bool = False
    ) -> Tensor:
        """Run the stack over time.

        Parameters
        ----------
        x:
            ``(batch, time, input_size)`` tensor.
        return_sequence:
            If ``True`` return all top-layer hidden states stacked as
            ``(batch, time, hidden_size)``; otherwise return only the final
            hidden state ``(batch, hidden_size)``.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got {x.shape}")
        batch, time, _ = x.shape
        zeros = np.zeros((batch, self.hidden_size))
        states: List[Tuple[Tensor, Tensor]] = [
            (Tensor(zeros.copy()), Tensor(zeros.copy())) for _ in range(self.num_layers)
        ]
        outputs: List[Tensor] = []
        for t in range(time):
            step = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                h, c = cell(step, states[layer])
                states[layer] = (h, c)
                step = h
            outputs.append(step)
        if return_sequence:
            return ops.stack(outputs, axis=1)
        return outputs[-1]


class FusedLSTM(LSTM):
    """Drop-in :class:`LSTM` running the fused forward/backward kernels.

    Parameters, initialization, and the flat parameter layout are exactly
    those of :class:`LSTM` (the cells are built by the parent constructor
    from the same ``rng`` draws), so model state transfers between the two
    backends through ``get_flat`` / ``set_flat`` without translation.  Only
    :meth:`forward` differs: the whole unroll executes as one
    :func:`repro.autograd.fused_lstm` graph node over this module's
    persistent :class:`~repro.autograd.FusedLSTMWorkspace`, which reuses
    its activation tape across minibatches and local epochs.

    The workspace makes the usual tape assumption: a forward's backward
    pass must run before the next forward through this module (the
    train-step pattern everywhere in this codebase).  Violations raise
    instead of corrupting gradients.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(input_size, hidden_size, num_layers, rng)
        self._workspace = FusedLSTMWorkspace()

    def forward(self, x: Tensor, return_sequence: bool = False) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got {x.shape}")
        return fused_lstm(
            x,
            [(cell.w_x, cell.w_h, cell.bias) for cell in self.cells],
            workspace=self._workspace,
            return_sequence=return_sequence,
        )
