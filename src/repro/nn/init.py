"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
every experiment in the harness is reproducible from a single seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero array (standard for biases)."""
    return np.zeros(shape, dtype=np.float64)


def normal(
    rng: np.random.Generator, shape: Tuple[int, ...], std: float = 0.01
) -> np.ndarray:
    """Gaussian ``N(0, std^2)`` initialization."""
    return rng.normal(0.0, std, size=shape)


def glorot_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform initialization for dense weights.

    Fan-in/fan-out are taken from the first/last axis, which covers the
    2-D dense and embedding matrices used here.
    """
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(rng: np.random.Generator, shape: Tuple[int, int]) -> np.ndarray:
    """Orthogonal initialization (common for recurrent weights)."""
    if len(shape) != 2:
        raise ValueError("orthogonal init requires a 2-D shape")
    rows, cols = shape
    a = rng.normal(0.0, 1.0, size=(rows, cols))
    if rows < cols:
        q, _ = np.linalg.qr(a.T)
        return np.ascontiguousarray(q.T)
    q, _ = np.linalg.qr(a)
    return np.ascontiguousarray(q)
