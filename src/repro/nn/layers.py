"""Feed-forward layers: dense (fully connected) and embedding."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, ops
from . import init
from .module import Module


class Dense(Module):
    """Affine transform ``x @ W + b`` with optional activation.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    rng:
        Random generator used for Glorot initialization of ``W``.
    activation:
        One of ``None``, ``"relu"``, ``"tanh"``, ``"sigmoid"``.
    bias:
        Whether to include the bias term.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        activation: Optional[str] = None,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if activation not in (None, "relu", "tanh", "sigmoid"):
            raise ValueError(f"unknown activation {activation!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        self.weight = Tensor(
            init.glorot_uniform(rng, (in_features, out_features)), requires_grad=True
        )
        if bias:
            self.bias = Tensor(init.zeros((out_features,)), requires_grad=True)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = ops.add(out, self.bias)
        if self.activation == "relu":
            out = ops.relu(out)
        elif self.activation == "tanh":
            out = ops.tanh(out)
        elif self.activation == "sigmoid":
            out = ops.sigmoid(out)
        return out


class Embedding(Module):
    """Trainable (or frozen) lookup table mapping token ids to vectors.

    Parameters
    ----------
    vocab_size, dim:
        Table shape.
    rng:
        Generator for the ``N(0, 0.1^2)`` initialization.
    trainable:
        When ``False`` the table is excluded from the parameter registry —
        this mirrors the frozen pre-trained GloVe embeddings used by the
        paper's Sent140 model.
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        rng: np.random.Generator,
        trainable: bool = True,
    ) -> None:
        super().__init__()
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Tensor(
            init.normal(rng, (vocab_size, dim), std=0.1), requires_grad=trainable
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        return ops.embedding(self.weight, np.asarray(indices))
