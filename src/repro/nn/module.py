"""Module base class with parameter registration and flat packing.

Federated algorithms in :mod:`repro.core` operate on flat parameter vectors
(the model ``w`` of the paper).  :class:`Module` therefore exposes
``get_flat`` / ``set_flat`` / ``flat_grad`` alongside the usual
parameter-registry behaviour familiar from mainstream frameworks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..autograd import Tensor


class Module:
    """Base class for neural network components.

    Subclasses assign :class:`~repro.autograd.Tensor` attributes (parameters,
    ``requires_grad=True``) or other :class:`Module` attributes (children);
    both are discovered automatically, in deterministic attribute-assignment
    order, for iteration and flat packing.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_children", {})

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._params[name] = value
        elif isinstance(value, Module):
            self._children[name] = value
        elif isinstance(value, ModuleList):
            self._children[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Parameter iteration
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Tensor]:
        """All trainable tensors of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(dotted_name, tensor)`` pairs in registration order."""
        for name, param in self._params.items():
            yield (f"{prefix}{name}", param)
        for name, child in self._children.items():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Flat-vector interface (the federated ``w``)
    # ------------------------------------------------------------------ #
    def get_flat(self) -> np.ndarray:
        """Concatenate all parameters into one flat ``float64`` vector."""
        parts = [p.data.reshape(-1) for p in self.parameters()]
        if not parts:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(parts).astype(np.float64, copy=True)

    def set_flat(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector (inverse of :meth:`get_flat`).

        Raises
        ------
        ValueError
            If the vector length does not match :meth:`num_parameters`.
        """
        flat = np.asarray(flat, dtype=np.float64)
        expected = self.num_parameters()
        if flat.size != expected:
            raise ValueError(
                f"flat vector has {flat.size} entries, model needs {expected}"
            )
        offset = 0
        for p in self.parameters():
            block = flat[offset : offset + p.size]
            p.data = block.reshape(p.shape).copy()
            offset += p.size

    def flat_grad(self) -> np.ndarray:
        """Concatenate parameter gradients into a flat vector.

        Parameters never touched by the last backward pass contribute zeros.
        """
        parts = []
        for p in self.parameters():
            if p.grad is None:
                parts.append(np.zeros(p.size, dtype=np.float64))
            else:
                parts.append(p.grad.reshape(-1))
        if not parts:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(parts)

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        """Compute the module output; must be overridden."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """Hold an ordered list of sub-modules, registering each child."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: List[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> None:
        """Add a module to the end of the list."""
        index = len(self._items)
        self._items.append(module)
        self._children[str(index)] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):
        raise NotImplementedError("ModuleList is a container, not callable")


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
