"""Loss functions re-exported at the nn level for convenience."""

from __future__ import annotations

from ..autograd.functional import (
    binary_cross_entropy_with_logits,
    mse_loss,
    softmax_cross_entropy,
)

__all__ = [
    "softmax_cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
]
