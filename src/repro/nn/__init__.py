"""Neural-network layers built on :mod:`repro.autograd`."""

from . import init
from .layers import Dense, Embedding
from .losses import (
    binary_cross_entropy_with_logits,
    mse_loss,
    softmax_cross_entropy,
)
from .module import Module, ModuleList, Sequential
from .recurrent import LSTM, FusedLSTM, LSTMCell, RNNCell

__all__ = [
    "init",
    "Module",
    "ModuleList",
    "Sequential",
    "Dense",
    "Embedding",
    "RNNCell",
    "LSTMCell",
    "LSTM",
    "FusedLSTM",
    "softmax_cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
]
