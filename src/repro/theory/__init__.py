"""Convergence-theory calculators and constant estimators (Section 4)."""

from .convergence import (
    Remark5Check,
    corollary7_mu,
    corollary7_rho,
    minimum_mu_for_positive_rho,
    remark5_conditions,
    rho,
    theorem6_iterations,
)
from .estimation import (
    ConstantEstimates,
    estimate_constants,
    estimate_lipschitz,
    logistic_lipschitz_bound,
)

__all__ = [
    "rho",
    "remark5_conditions",
    "Remark5Check",
    "corollary7_mu",
    "corollary7_rho",
    "theorem6_iterations",
    "minimum_mu_for_positive_rho",
    "estimate_lipschitz",
    "logistic_lipschitz_bound",
    "estimate_constants",
    "ConstantEstimates",
]
