"""Empirical estimation of the theory's constants.

The convergence results of Section 4 are stated in terms of constants a
practitioner never knows exactly: the smoothness ``L`` of the local
objectives, the dissimilarity bound ``B`` (Assumption 1), and the local
inexactness ``gamma``.  These estimators measure them on a concrete
federation so the Theorem 4 calculators in
:mod:`repro.theory.convergence` can be applied to real runs (as done in
``benchmarks/ablations/test_theory_constants.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.client import Client
from ..core.dissimilarity import measure_dissimilarity
from ..models.base import FederatedModel


def estimate_lipschitz(
    model: FederatedModel,
    X: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator,
    center: Optional[np.ndarray] = None,
    num_pairs: int = 20,
    radius: float = 1.0,
) -> float:
    """Lower-bound estimate of the gradient-Lipschitz constant ``L``.

    Samples random pairs of points within ``radius`` of ``center`` and
    returns the largest observed ratio
    ``||∇F(w1) − ∇F(w2)|| / ||w1 − w2||``.  This is a *lower* bound on the
    true ``L``; more pairs tighten it.

    Parameters
    ----------
    model:
        Loss/gradient oracle over the flat parameter vector.
    X, y:
        The data defining ``F``.
    rng:
        Randomness for pair sampling.
    center:
        Region center (defaults to the model's current parameters).
    num_pairs:
        Number of random pairs to probe.
    radius:
        Sampling radius around the center.
    """
    if num_pairs < 1:
        raise ValueError("num_pairs must be at least 1")
    base = (
        np.asarray(center, dtype=np.float64)
        if center is not None
        else model.get_params()
    )
    best = 0.0
    for _ in range(num_pairs):
        w1 = base + rng.normal(scale=radius, size=base.shape)
        w2 = base + rng.normal(scale=radius, size=base.shape)
        denom = float(np.linalg.norm(w1 - w2))
        if denom == 0.0:
            continue
        model.set_params(w1)
        g1 = model.gradient(X, y)
        model.set_params(w2)
        g2 = model.gradient(X, y)
        ratio = float(np.linalg.norm(g1 - g2)) / denom
        best = max(best, ratio)
    model.set_params(base)
    return best


def logistic_lipschitz_bound(X: np.ndarray) -> float:
    """Closed-form smoothness bound for multinomial logistic regression.

    For softmax cross-entropy the Hessian with respect to the scores is
    bounded by ``1/2 I`` (actually ``1/2`` on the simplex), so the loss as
    a function of ``W`` is ``L``-smooth with
    ``L <= (1/2) * lambda_max(X^T X) / n``.

    Parameters
    ----------
    X:
        ``(n, d)`` design matrix of the dataset being bounded.
    """
    n = len(X)
    if n == 0:
        raise ValueError("empty design matrix")
    gram = (X.T @ X) / n
    return 0.5 * float(np.linalg.eigvalsh(gram)[-1])


@dataclass(frozen=True)
class ConstantEstimates:
    """Measured constants for a federation at a point ``w``.

    Attributes
    ----------
    B:
        Measured dissimilarity ``B(w)`` (Definition 3).
    gradient_variance:
        ``E_k ||∇F_k(w) − ∇f(w)||²`` (Corollary 10's ``sigma^2`` at ``w``).
    L:
        Estimated smoothness constant.
    global_gradient_norm:
        ``||∇f(w)||``, useful for choosing the stationarity target ``eps``.
    """

    B: float
    gradient_variance: float
    L: float
    global_gradient_norm: float


def estimate_constants(
    clients: Sequence[Client],
    w: np.ndarray,
    rng: np.random.Generator,
    num_pairs: int = 10,
    radius: float = 0.5,
    max_clients: Optional[int] = None,
) -> ConstantEstimates:
    """Measure ``B``, ``sigma^2`` and ``L`` for a federation at ``w``.

    ``L`` is estimated as the maximum per-client Lipschitz estimate over a
    subsample of clients (the theory assumes every ``F_k`` is L-smooth).
    """
    report = measure_dissimilarity(clients, w, max_clients=max_clients)
    probe_clients = clients if max_clients is None else clients[:max_clients]
    L = 0.0
    for client in probe_clients:
        L = max(
            L,
            estimate_lipschitz(
                client.model,
                client.data.train_x,
                client.data.train_y,
                rng,
                center=np.asarray(w, dtype=np.float64),
                num_pairs=num_pairs,
                radius=radius,
            ),
        )
    return ConstantEstimates(
        B=report.b_value,
        gradient_variance=report.gradient_variance,
        L=L,
        global_gradient_norm=report.global_gradient_norm,
    )
