"""Convergence-theory calculators (Section 4 of the paper).

These implement the paper's formulas so that experiments can be checked
against the theory:

* :func:`rho` — the per-round decrease coefficient of Theorem 4::

      rho = 1/mu - gamma*B/mu - B(1+gamma)*sqrt(2)/(mu_bar*sqrt(K))
            - L*B*(1+gamma)/(mu_bar*mu) - L*(1+gamma)^2*B^2/(2*mu_bar^2)
            - L*B^2*(1+gamma)^2*(2*sqrt(2K)+2)/(mu_bar^2*K)

  with ``mu_bar = mu - L_minus`` (Theorem 4 requires ``mu_bar > 0``).
* :func:`remark5_conditions` — the necessary sanity conditions of Remark 5
  (``gamma*B < 1`` and ``B < sqrt(K)``).
* :func:`corollary7_mu` / :func:`corollary7_rho` — the convex-case choices
  ``mu ~ 6 L B^2`` and ``rho ~ 1/(24 L B^2)``.
* :func:`theorem6_iterations` — ``T = O(Delta / (rho * eps))``.
* :func:`minimum_mu_for_positive_rho` — numeric search for the smallest µ
  that makes Theorem 4's decrease coefficient positive.

All functions operate on plain floats so they can be used with either
assumed constants or the empirical estimates from
:mod:`repro.theory.estimation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def rho(
    mu: float,
    K: int,
    gamma: float,
    B: float,
    L: float,
    L_minus: float = 0.0,
) -> float:
    """Theorem 4's expected-decrease coefficient ``rho``.

    Parameters
    ----------
    mu:
        Proximal coefficient (must exceed ``L_minus``).
    K:
        Devices selected per round.
    gamma:
        Uniform local inexactness in [0, 1].
    B:
        Dissimilarity bound (Definition 3 / Assumption 1), ``B >= 1``.
    L:
        Lipschitz-smoothness constant of the local objectives.
    L_minus:
        Lower curvature bound (``∇²F_k ⪰ -L_minus I``); 0 for convex
        objectives.

    Returns
    -------
    float
        ``rho``; training is guaranteed to make progress when positive.

    Raises
    ------
    ValueError
        If ``mu <= L_minus`` (Theorem 4 requires ``mu_bar > 0``) or any
        argument is out of range.
    """
    if mu <= L_minus:
        raise ValueError(
            f"Theorem 4 requires mu > L_minus (mu_bar > 0); got mu={mu}, "
            f"L_minus={L_minus}"
        )
    if K < 1:
        raise ValueError("K must be at least 1")
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    if B < 0 or L < 0 or L_minus < 0:
        raise ValueError("B, L and L_minus must be non-negative")

    mu_bar = mu - L_minus
    one_plus_gamma = 1.0 + gamma
    return (
        1.0 / mu
        - gamma * B / mu
        - B * one_plus_gamma * math.sqrt(2.0) / (mu_bar * math.sqrt(K))
        - L * B * one_plus_gamma / (mu_bar * mu)
        - L * one_plus_gamma**2 * B**2 / (2.0 * mu_bar**2)
        - L * B**2 * one_plus_gamma**2 * (2.0 * math.sqrt(2.0 * K) + 2.0)
        / (mu_bar**2 * K)
    )


@dataclass(frozen=True)
class Remark5Check:
    """Outcome of the Remark 5 sanity conditions.

    Attributes
    ----------
    gamma_b:
        The product ``gamma * B`` (must be < 1).
    b_over_sqrt_k:
        ``B / sqrt(K)`` (must be < 1).
    satisfied:
        True when both conditions hold.
    """

    gamma_b: float
    b_over_sqrt_k: float

    @property
    def satisfied(self) -> bool:
        return self.gamma_b < 1.0 and self.b_over_sqrt_k < 1.0


def remark5_conditions(gamma: float, B: float, K: int) -> Remark5Check:
    """Remark 5: necessary conditions for ``rho > 0``.

    ``gamma * B < 1`` bounds how inexact local solves may be relative to the
    dissimilarity; ``B < sqrt(K)`` bounds dissimilarity relative to the
    per-round participation.
    """
    if K < 1:
        raise ValueError("K must be at least 1")
    return Remark5Check(gamma_b=gamma * B, b_over_sqrt_k=B / math.sqrt(K))


def corollary7_mu(L: float, B: float) -> float:
    """Corollary 7's convex-case proximal coefficient ``mu ~ 6 L B^2``."""
    if L <= 0 or B <= 0:
        raise ValueError("L and B must be positive")
    return 6.0 * L * B**2


def corollary7_rho(L: float, B: float) -> float:
    """Corollary 7's convex-case decrease coefficient ``rho ~ 1/(24 L B^2)``."""
    if L <= 0 or B <= 0:
        raise ValueError("L and B must be positive")
    return 1.0 / (24.0 * L * B**2)


def theorem6_iterations(delta: float, rho_value: float, epsilon: float) -> int:
    """Theorem 6's iteration count ``T = Delta / (rho * eps)``.

    Parameters
    ----------
    delta:
        Initial optimality gap ``f(w0) - f*``.
    rho_value:
        A positive decrease coefficient from :func:`rho`.
    epsilon:
        Target mean-squared-gradient accuracy.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if rho_value <= 0:
        raise ValueError("rho must be positive (Theorem 4 not satisfied)")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return math.ceil(delta / (rho_value * epsilon))


def minimum_mu_for_positive_rho(
    K: int,
    gamma: float,
    B: float,
    L: float,
    L_minus: float = 0.0,
    mu_max: float = 1e6,
    tolerance: float = 1e-6,
) -> float:
    """A ``mu`` on the boundary of the region where ``rho(mu) > 0``.

    ``rho`` tends to ``-inf`` as ``mu`` approaches ``L_minus`` from above
    and to ``0`` as ``mu -> inf`` (from the positive side when the
    parameters admit progress at all), so bisection between a non-positive
    and a positive evaluation finds a threshold ``mu`` just inside the
    positive region.  Remark 5's conditions are necessary but not
    sufficient; when no ``mu <= mu_max`` yields ``rho > 0`` a
    :class:`ValueError` is raised.

    Parameters
    ----------
    K, gamma, B, L, L_minus:
        As in :func:`rho`.
    mu_max:
        Upper limit of the search interval.
    tolerance:
        Absolute precision of the returned ``mu``.
    """
    check = remark5_conditions(gamma, B, K)
    if not check.satisfied:
        raise ValueError(
            "Remark 5 conditions violated "
            f"(gamma*B={check.gamma_b:.3f}, B/sqrt(K)={check.b_over_sqrt_k:.3f}); "
            "no mu yields rho > 0"
        )
    low = L_minus + tolerance
    high = mu_max
    if rho(high, K, gamma, B, L, L_minus) <= 0:
        raise ValueError(
            f"rho is non-positive even at mu={mu_max}; increase mu_max or "
            "reduce gamma/B"
        )
    # rho(low) may already be positive for tiny problems.
    if rho(low, K, gamma, B, L, L_minus) > 0:
        return low
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if rho(mid, K, gamma, B, L, L_minus) > 0:
            high = mid
        else:
            low = mid
    return high
