"""Fault injection & robustness: seeded device failures + server policies.

The paper's headline robustness claim — FedProx keeps converging when 90%
of devices cannot finish their work, while FedAvg that drops them degrades
(§5.2, Figure 2) — is about *failure tolerance*, not just reduced budgets.
This subsystem simulates the failure patterns production federations
actually see and the server policies that absorb them:

* **Fault models** (:mod:`repro.faults.models`): composable, per-client
  seeded :class:`FaultSchedule` s — crash-mid-solve, round dropout, update
  corruption, stale delivery, and a chaos mode sampling from all of them.
  Draws ride the same ``(seed, round, client)`` entropy pipeline as
  straggler draws, so fault environments are identical across executors
  and run-to-run.
* **Robustness policies** (:mod:`repro.faults.policy`):
  :class:`FaultPolicy` — retry-with-backoff, accept-partial (FedProx's
  γ-inexact semantics), drop-and-reweight (FedAvg semantics), non-finite
  quarantine with suspicion counters, and a minimum aggregation quorum.
* **Orchestration** (:mod:`repro.faults.manager`): :class:`FaultManager`
  applies schedule + policy each round and emits ``fault:*`` /
  ``round:degraded`` events through the telemetry schema.

Quickstart::

    from repro.faults import CrashFaults, FaultPolicy

    trainer = FederatedTrainer(
        dataset, model, solver, mu=1.0,
        faults=CrashFaults(rate=0.9, seed=0),
        fault_policy=FaultPolicy.fedprox(min_quorum=2),
    )

The default (:data:`NO_FAULTS`) injects nothing and keeps trainer behavior
bit-identical to a fault-unaware build.
"""

from .manager import RETRY_SALT, FaultManager, FaultStats, RoundFaultReport
from .models import (
    CORRUPT_MODES,
    FAULT_KINDS,
    FAULT_SALT,
    NO_FAULTS,
    ChaosFaults,
    ComposeFaults,
    CorruptionFaults,
    CrashFaults,
    DropoutFaults,
    FaultDecision,
    FaultSchedule,
    NoFaults,
    StaleFaults,
    fault_schedule_from_dict,
    resolve_faults,
)
from .policy import CRASH_ACTIONS, RETRY_FALLBACKS, FaultPolicy

__all__ = [
    "FaultSchedule",
    "FaultDecision",
    "NoFaults",
    "NO_FAULTS",
    "CrashFaults",
    "DropoutFaults",
    "CorruptionFaults",
    "StaleFaults",
    "ChaosFaults",
    "ComposeFaults",
    "fault_schedule_from_dict",
    "resolve_faults",
    "FaultPolicy",
    "FaultManager",
    "FaultStats",
    "RoundFaultReport",
    "FAULT_KINDS",
    "FAULT_SALT",
    "CORRUPT_MODES",
    "CRASH_ACTIONS",
    "RETRY_FALLBACKS",
    "RETRY_SALT",
]
