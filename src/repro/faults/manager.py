"""Round-level fault orchestration: draws, retries, quarantine, quorum.

:class:`FaultManager` is the stateful counterpart of the pure
:class:`~repro.faults.models.FaultSchedule` /
:class:`~repro.faults.policy.FaultPolicy` pair.  The trainer owns one
manager per run; each round the manager

1. draws every pending solve's fault from the schedule (skipping
   quarantined clients outright),
2. dispatches the surviving tasks through the trainer's executor (the
   manager never cares *which* executor — tasks are pure descriptions, so
   serial/parallel/cohort all yield identical outcomes),
3. resolves crashes per policy — retry waves with fresh sub-seeds and
   simulated backoff, accept-partial, or drop,
4. quarantines non-finite updates and books suspicion counters,
5. buffers/delivers stale updates, and
6. enforces the minimum aggregation quorum.

Every decision is emitted through the PR 3 telemetry schema as it happens
(``fault:injected`` / ``fault:retry`` / ``fault:quarantine`` /
``round:degraded`` counter events) and accumulated in cumulative
:class:`FaultStats` counters that feed the trainer's metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..telemetry import NULL_TELEMETRY, resolve_telemetry
from .models import FaultDecision, FaultSchedule
from .policy import FaultPolicy

#: Entropy-tuple salt separating retry dispatches from first attempts.
RETRY_SALT = 0x4E7F


@dataclass
class FaultStats:
    """Cumulative fault counters for one training run."""

    injected: int = 0
    crashes: int = 0
    offline: int = 0
    retries: int = 0
    crash_dropped: int = 0
    quarantined_updates: int = 0
    quarantined_clients: int = 0
    quarantine_skips: int = 0
    stale_held: int = 0
    stale_delivered: int = 0
    quorum_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class RoundFaultReport:
    """What the fault layer did during one round.

    ``dropped`` collects every client whose update was discarded for a
    fault-related reason (offline, crash-drop, quarantine) — the trainer
    merges it into the round record's ``dropped`` list.
    """

    offline: List[int] = field(default_factory=list)
    crashed: List[int] = field(default_factory=list)
    retried: Dict[int, int] = field(default_factory=dict)
    dropped: List[int] = field(default_factory=list)
    quarantined: List[int] = field(default_factory=list)
    stale_held: List[int] = field(default_factory=list)
    stale_delivered: List[int] = field(default_factory=list)
    degraded: bool = False

    @property
    def any_fault(self) -> bool:
        return bool(
            self.offline
            or self.crashed
            or self.quarantined
            or self.stale_held
            or self.stale_delivered
            or self.degraded
        )


#: One pending solve: ``(client_id, epochs_budget, occurrence)``.
PendingSolve = Tuple[int, float, int]


class FaultManager:
    """Applies a fault schedule + robustness policy to the trainer's rounds.

    Parameters
    ----------
    schedule:
        The fault model (deterministic per-(round, client, attempt) draws).
    policy:
        The robustness policy (crash handling, quarantine, quorum).
    telemetry:
        Event sink façade; fault events are emitted as ``counter`` metrics
        so they land in the same JSONL artifacts as spans and diagnostics.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        policy: FaultPolicy,
        telemetry=None,
    ) -> None:
        self.schedule = schedule
        self.policy = policy
        self.telemetry = resolve_telemetry(telemetry)
        self.stats = FaultStats()
        self.suspicion: Dict[int, int] = {}
        self.quarantined_clients: Set[int] = set()
        # Stale deliveries: (arrival_round, insertion_order, update).
        self._stale_buffer: List[Tuple[int, int, object]] = []
        self._stale_counter = 0

    # Event helpers -------------------------------------------------------- #
    def _event(self, name: str, round_idx: int, **attrs) -> None:
        self.telemetry.metric(name, 1, round_idx=round_idx, kind="counter", **attrs)

    # Round orchestration -------------------------------------------------- #
    def execute_round(
        self,
        round_idx: int,
        pending: Sequence[PendingSolve],
        build_task: Callable[[int, float, int, Tuple[int, ...], Optional[FaultDecision]], object],
        dispatch: Callable[[Sequence[object]], List[object]],
        num_selected: int,
        always_dispatch: bool = False,
    ) -> Tuple[List[object], RoundFaultReport]:
        """Run one round's solves under the fault schedule and policy.

        Parameters
        ----------
        round_idx:
            Current communication round.
        pending:
            The non-dropped assignments: ``(client_id, epochs, occurrence)``.
        build_task:
            ``(client_id, epochs, occurrence, extra_entropy, fault) ->
            LocalTask`` — the trainer's task factory; ``extra_entropy``
            appends retry sub-seed components to the batch entropy tuple.
        dispatch:
            The bound executor's ``run_local_solves``.
        num_selected:
            Size of the round's selection (the quorum denominator).
        always_dispatch:
            Dispatch even when every pending solve was skipped (set for
            continuous engines: the async executor may still deliver
            queued check-ins from earlier rounds).

        Returns
        -------
        (updates, report):
            Updates surviving the policy, in dispatch order (stale
            deliveries appended last), and the round's fault report.
            ``updates`` is empty when the quorum guard degraded the round.

        Asynchronous dispatch
        ---------------------
        A continuous engine may return *fewer* updates than tasks (some
        check-ins still in flight) or *more* (earlier rounds' check-ins
        delivering now).  Fault decisions ride on the tasks themselves, so
        they apply per check-in regardless of delivery round; the manager
        re-pairs delivered updates with their pending entries by client id
        and books late deliveries under synthetic entries.  Synchronous
        executors always return exactly one update per task, keeping the
        historical 1:1 pairing (and its arithmetic) untouched.
        """
        policy = self.policy
        report = RoundFaultReport()

        # 1. Draw faults and plan the first dispatch wave.
        tasks: List[object] = []
        entries: List[PendingSolve] = []
        for cid, epochs, occurrence in pending:
            if cid in self.quarantined_clients:
                self.stats.quarantine_skips += 1
                report.dropped.append(cid)
                continue
            decision = self.schedule.draw(round_idx, cid, attempt=0)
            if decision is not None:
                self.stats.injected += 1
                self._event(
                    "fault:injected", round_idx,
                    client_id=cid, fault=decision.kind, attempt=0,
                )
            if decision is not None and decision.kind == "dropout":
                self.stats.offline += 1
                report.offline.append(cid)
                report.dropped.append(cid)
                continue
            tasks.append(build_task(cid, epochs, occurrence, (), decision))
            entries.append((cid, epochs, occurrence))
        updates = list(dispatch(tasks)) if tasks or always_dispatch else []
        if len(updates) != len(entries):
            entries = self._repair_entries(updates, entries)

        # 2. Resolve crashes per policy.
        crashed_idx = [
            i for i, u in enumerate(updates)
            if u.fault is not None and u.fault.kind == "crash"
        ]
        for i in crashed_idx:
            self.stats.crashes += 1
            report.crashed.append(entries[i][0])
        if crashed_idx and policy.on_crash == "drop":
            for i in crashed_idx:
                self.stats.crash_dropped += 1
                report.dropped.append(entries[i][0])
            updates = [u for i, u in enumerate(updates) if i not in set(crashed_idx)]
            entries = [e for i, e in enumerate(entries) if i not in set(crashed_idx)]
        elif crashed_idx and policy.on_crash == "retry":
            updates, entries, report = self._retry_crashed(
                round_idx, updates, entries, crashed_idx,
                build_task, dispatch, report,
            )
        # "accept_partial": crashed updates stay as they are — their
        # truncated-budget iterates are FedProx partial solutions.

        # 3. Quarantine non-finite updates, book suspicion.
        survivors: List[object] = []
        surviving_entries: List[PendingSolve] = []
        for update, entry in zip(updates, entries):
            if not np.all(np.isfinite(update.w)):
                cid = entry[0]
                self.stats.quarantined_updates += 1
                report.quarantined.append(cid)
                report.dropped.append(cid)
                count = self.suspicion.get(cid, 0) + 1
                self.suspicion[cid] = count
                self._event(
                    "fault:quarantine", round_idx,
                    client_id=cid, suspicion=count,
                )
                if (
                    count >= policy.quarantine_threshold
                    and cid not in self.quarantined_clients
                ):
                    self.quarantined_clients.add(cid)
                    self.stats.quarantined_clients += 1
                continue
            survivors.append(update)
            surviving_entries.append(entry)
        updates, entries = survivors, surviving_entries

        # 4. Hold back stale deliveries; release matured ones.
        timely: List[object] = []
        for update, entry in zip(updates, entries):
            if update.fault is not None and update.fault.kind == "stale":
                self.stats.stale_held += 1
                report.stale_held.append(entry[0])
                self._stale_buffer.append(
                    (round_idx + update.fault.delay, self._stale_counter, update)
                )
                self._stale_counter += 1
                continue
            timely.append(update)
        matured = [
            item for item in self._stale_buffer if item[0] <= round_idx
        ]
        if matured:
            self._stale_buffer = [
                item for item in self._stale_buffer if item[0] > round_idx
            ]
            for _, _, update in sorted(matured, key=lambda item: item[:2]):
                self.stats.stale_delivered += 1
                report.stale_delivered.append(update.client_id)
                timely.append(update)
        updates = timely

        # 5. Minimum-quorum guard.
        quorum = policy.quorum_for(num_selected)
        if quorum and len(updates) < quorum:
            self.stats.quorum_misses += 1
            report.degraded = True
            self._event(
                "round:degraded", round_idx,
                survivors=len(updates), quorum=quorum,
            )
            updates = []
        return updates, report

    # Asynchronous delivery ------------------------------------------------ #
    @staticmethod
    def _repair_entries(
        updates: List[object], entries: List[PendingSolve]
    ) -> List[PendingSolve]:
        """Re-pair delivered updates with pending entries by client id.

        Only reached under asynchronous dispatch (synchronous executors
        return one update per task).  Updates matching a pending entry
        inherit it; deliveries from earlier rounds get a synthetic entry
        carrying the update's own executed budget (what a retry of that
        client would reasonably re-run).  Entries whose check-in is still
        in flight simply drop out — their updates surface, and are
        policy-resolved, in a later round.
        """
        by_cid: Dict[int, List[PendingSolve]] = {}
        for entry in entries:
            by_cid.setdefault(entry[0], []).append(entry)
        repaired: List[PendingSolve] = []
        for update in updates:
            candidates = by_cid.get(update.client_id)
            if candidates:
                repaired.append(candidates.pop(0))
            else:
                repaired.append((update.client_id, update.epochs, 0))
        return repaired

    # Crash retries -------------------------------------------------------- #
    def _retry_crashed(
        self,
        round_idx: int,
        updates: List[object],
        entries: List[PendingSolve],
        crashed_idx: List[int],
        build_task,
        dispatch,
        report: RoundFaultReport,
    ) -> Tuple[List[object], List[PendingSolve], RoundFaultReport]:
        """Retry crashed solves in waves; resolve stragglers per fallback.

        Each retry attempt re-draws the fault schedule (a retry may crash
        or drop out again) and re-derives the mini-batch sub-seed from
        ``(RETRY_SALT, attempt)``, so retry outcomes are as deterministic
        and executor-independent as first attempts.  All solves failing at
        the same attempt level are dispatched as one wave, preserving
        batch-level parallelism.
        """
        policy = self.policy
        # index -> last recovered partial update (None after a dropout-only
        # chain would be impossible: the first attempt always yields one).
        failed: Dict[int, object] = {i: updates[i] for i in crashed_idx}
        for attempt in range(1, policy.max_retries + 1):
            if not failed:
                break
            wave_tasks = []
            wave_idx = []
            for i in sorted(failed):
                cid, epochs, occurrence = entries[i]
                self.stats.retries += 1
                report.retried[cid] = attempt
                self._event(
                    "fault:retry", round_idx,
                    client_id=cid, attempt=attempt,
                    backoff=policy.backoff(attempt),
                )
                decision = self.schedule.draw(round_idx, cid, attempt=attempt)
                if decision is not None:
                    self.stats.injected += 1
                    self._event(
                        "fault:injected", round_idx,
                        client_id=cid, fault=decision.kind, attempt=attempt,
                    )
                if decision is not None and decision.kind == "dropout":
                    # Device unreachable this attempt; nothing to dispatch.
                    self.stats.offline += 1
                    continue
                wave_tasks.append(
                    build_task(
                        cid, epochs, occurrence, (RETRY_SALT, attempt), decision
                    )
                )
                wave_idx.append(i)
            wave_updates = list(dispatch(wave_tasks)) if wave_tasks else []
            if len(wave_updates) == len(wave_idx):
                pairs = list(zip(wave_idx, wave_updates))
                extras: List[object] = []
            else:
                # Asynchronous dispatch: pair retry deliveries with their
                # wave slots by client id; anything else is an earlier
                # check-in surfacing mid-retry — accepted as a fresh row.
                slots: Dict[int, List[int]] = {}
                for i in wave_idx:
                    slots.setdefault(entries[i][0], []).append(i)
                pairs, extras = [], []
                for update in wave_updates:
                    candidates = slots.get(update.client_id)
                    if candidates:
                        pairs.append((candidates.pop(0), update))
                    else:
                        extras.append(update)
            for i, update in pairs:
                if update.fault is not None and update.fault.kind == "crash":
                    self.stats.crashes += 1
                    failed[i] = update  # fresher partial iterate
                else:
                    updates[i] = update
                    del failed[i]
            for update in extras:
                updates.append(update)
                entries.append((update.client_id, update.epochs, 0))
        if failed:
            if policy.after_retries == "drop":
                for i in sorted(failed):
                    self.stats.crash_dropped += 1
                    report.dropped.append(entries[i][0])
                keep = set(range(len(updates))) - set(failed)
                entries = [e for i, e in enumerate(entries) if i in keep]
                updates = [u for i, u in enumerate(updates) if i in keep]
            else:  # accept the last recovered partial iterate
                for i, update in failed.items():
                    updates[i] = update
        return updates, entries, report
