"""Server-side robustness policies: what the trainer does when devices fail.

A :class:`FaultPolicy` is pure configuration — the decisions themselves are
executed by :class:`~repro.faults.manager.FaultManager` each round.  The
policy axes map onto the paper's method semantics:

* ``on_crash="accept_partial"`` — FedProx's γ-inexact partial-work
  semantics (Definition 2): a crashed device's recovered partial iterate is
  aggregated like any straggler's partial solution.
* ``on_crash="drop"`` — FedAvg's semantics: failed devices contribute
  nothing (their updates are discarded, shifting aggregation weight onto
  the survivors).
* ``on_crash="retry"`` — re-dispatch the solve with a fresh sub-seed up to
  ``max_retries`` times, paying (simulated) exponential backoff; when every
  attempt fails, fall back to ``after_retries``.

Independent of crash handling, the policy guards aggregation itself:

* **Quarantine** — updates containing non-finite values are never
  aggregated; each offense increments the client's suspicion counter and a
  client reaching ``quarantine_threshold`` is excluded from all future
  rounds (its selections are skipped without solving).
* **Minimum quorum** — when fewer than ``min_quorum`` updates survive a
  round, aggregation is skipped entirely (the global model holds) and the
  round is marked degraded, rather than letting one or two surviving
  devices yank the model toward their local optima.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import List

#: Crash-handling strategies.
CRASH_ACTIONS = ("accept_partial", "drop", "retry")

#: Post-retry fallbacks (a retry chain that never succeeds ends here).
RETRY_FALLBACKS = ("accept_partial", "drop")


@dataclass(frozen=True)
class FaultPolicy:
    """Robustness configuration applied by the trainer every round.

    Parameters
    ----------
    on_crash:
        ``"accept_partial"`` (FedProx semantics, the default), ``"drop"``
        (FedAvg semantics), or ``"retry"``.
    max_retries:
        Retry budget per solve when ``on_crash="retry"``.
    after_retries:
        What to do when every retry fails: ``"accept_partial"`` keeps the
        last recovered partial iterate (if any), ``"drop"`` discards.
    backoff_base:
        First retry's simulated backoff delay (seconds of simulated wall
        time; recorded in telemetry, never actually slept).
    backoff_factor:
        Multiplier between consecutive backoff delays.
    quarantine_threshold:
        Non-finite offenses before a client is permanently quarantined.
    min_quorum:
        Aggregation quorum: ``0`` disables the guard, an ``int >= 1`` is an
        absolute update count, and a float in ``(0, 1)`` is a fraction of
        the round's selected devices (rounded up).
    """

    on_crash: str = "accept_partial"
    max_retries: int = 2
    after_retries: str = "accept_partial"
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    quarantine_threshold: int = 3
    min_quorum: float = 0.0

    def __post_init__(self) -> None:
        if self.on_crash not in CRASH_ACTIONS:
            raise ValueError(
                f"on_crash must be one of {CRASH_ACTIONS}, got {self.on_crash!r}"
            )
        if self.after_retries not in RETRY_FALLBACKS:
            raise ValueError(
                f"after_retries must be one of {RETRY_FALLBACKS}, "
                f"got {self.after_retries!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_factor <= 0:
            raise ValueError("backoff_base must be >= 0, backoff_factor > 0")
        if self.quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be at least 1")
        if self.min_quorum < 0:
            raise ValueError("min_quorum must be non-negative")

    # Derived quantities -------------------------------------------------- #
    def backoff(self, attempt: int) -> float:
        """Simulated delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return self.backoff_base * self.backoff_factor ** (attempt - 1)

    def backoff_sequence(self, n: int = None) -> List[float]:
        """The full simulated backoff schedule (``max_retries`` delays)."""
        count = self.max_retries if n is None else n
        return [self.backoff(a) for a in range(1, count + 1)]

    def quorum_for(self, num_selected: int) -> int:
        """The minimum surviving-update count for ``num_selected`` devices."""
        if self.min_quorum == 0:
            return 0
        if self.min_quorum < 1:
            return max(1, math.ceil(num_selected * self.min_quorum))
        return int(self.min_quorum)

    # Presets -------------------------------------------------------------- #
    @classmethod
    def fedprox(cls, **overrides) -> "FaultPolicy":
        """Accept-partial semantics (tolerate partial work, Algorithm 2)."""
        overrides.setdefault("on_crash", "accept_partial")
        return cls(**overrides)

    @classmethod
    def fedavg(cls, **overrides) -> "FaultPolicy":
        """Drop semantics (discard failed devices, Algorithm 1)."""
        overrides.setdefault("on_crash", "drop")
        return cls(**overrides)

    # Serialization -------------------------------------------------------- #
    def to_dict(self) -> dict:
        """Flat JSON-scalar description (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, spec: dict) -> "FaultPolicy":
        return cls(**spec)
