"""Deterministic, seeded device-fault models.

The paper's systems-heterogeneity protocol (§5.2) reduces constrained
devices to *smaller epoch budgets*; real federated deployments additionally
see devices that crash mid-solve, go offline for whole rounds, return
corrupted updates, or deliver their updates rounds late.  This module
simulates those failure patterns with the same determinism contract as the
straggler models: every draw is a pure function of
``(seed, round, client, attempt)`` through the shared
:func:`repro.systems.stragglers.entropy_rng` pipeline, so two runs built
with the same seed face the same faults — on any executor, in any process,
regardless of dispatch order.

Fault taxonomy
--------------
``crash``
    The device fails after completing a drawn fraction of its step budget.
    Its partial iterate is recoverable (the device checkpointed): whether
    the server retries, accepts the partial work (FedProx's γ-inexact
    semantics), or drops the update is the
    :class:`~repro.faults.policy.FaultPolicy`'s decision.
``dropout``
    The device is unavailable for the whole round; no update exists.
``corrupt``
    The solve completes but the delivered update is damaged — NaN-poisoned
    (``mode="nan"``, detectable) or perturbed by heavy noise
    (``mode="noise"``, silent).
``stale``
    The solve completes but delivery is delayed by a drawn number of
    rounds; the server receives the (stale) update later.

:class:`FaultSchedule` extends the :class:`~repro.systems.stragglers.SystemsModel`
protocol: a schedule *is* a systems model (its :meth:`assign` passes
budgets through unchanged, so a schedule alone describes a federation with
faults but no stragglers) that additionally answers per-device fault
queries via :meth:`draw`.  The trainer composes it with an independent
straggler model — budgets and faults are orthogonal axes of the simulated
environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..systems.stragglers import SystemsModel, WorkAssignment, entropy_rng

# Salt separating fault draws from straggler/batch draws in the shared
# seed-entropy pipeline (arbitrary constant, spells "FA17" for faults).
FAULT_SALT = 0xFA17

#: The fault kinds a schedule may draw.
FAULT_KINDS = ("crash", "dropout", "corrupt", "stale")

#: Corruption flavors.
CORRUPT_MODES = ("nan", "noise")


@dataclass(frozen=True)
class FaultDecision:
    """One device's drawn fault for one round (or retry attempt).

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    fraction:
        For ``crash``: fraction of the step budget completed before the
        failure (the recoverable partial work).
    delay:
        For ``stale``: rounds until the update actually arrives.
    mode:
        For ``corrupt``: ``"nan"`` (detectable poisoning) or ``"noise"``.
    scale:
        For ``corrupt``/``mode="noise"``: noise magnitude relative to the
        update's RMS value.
    """

    kind: str
    fraction: float = 1.0
    delay: int = 0
    mode: str = "nan"
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.kind == "crash" and not 0.0 < self.fraction <= 1.0:
            raise ValueError("crash fraction must be in (0, 1]")
        if self.kind == "stale" and self.delay < 1:
            raise ValueError("stale delay must be at least 1 round")
        if self.kind == "corrupt" and self.mode not in CORRUPT_MODES:
            raise ValueError(
                f"corrupt mode must be one of {CORRUPT_MODES}, got {self.mode!r}"
            )


class FaultSchedule(SystemsModel):
    """Per-(round, device) fault draws; a :class:`SystemsModel` extension.

    Subclasses implement :meth:`draw` as a pure function of
    ``(seed, round, client, attempt)``.  ``attempt`` distinguishes retry
    dispatches — a retried solve faces a *fresh* fault draw, so retries can
    themselves fail deterministically.

    As a systems model, a schedule assigns every device its full budget
    (faults never shrink budgets — a crash truncates the *executed* work,
    which is a different thing: the device intended the full budget).
    """

    #: Whether this schedule can ever inject a fault.  ``False`` only for
    #: :class:`NoFaults`; the trainer uses it to keep the disabled path
    #: bit-identical to pre-fault behavior.
    enabled = True

    def assign(
        self, round_idx: int, client_ids: Sequence[int], max_epochs: float
    ) -> List[WorkAssignment]:
        return [
            WorkAssignment(client_id=c, epochs=max_epochs, is_straggler=False)
            for c in client_ids
        ]

    def draw(
        self, round_idx: int, client_id: int, attempt: int = 0
    ) -> Optional[FaultDecision]:
        """The fault (if any) striking this solve; ``None`` means healthy."""
        raise NotImplementedError

    def _rng(
        self, round_idx: int, client_id: int, attempt: int
    ) -> np.random.Generator:
        """Per-draw generator on the shared seed-entropy pipeline."""
        return entropy_rng(
            getattr(self, "seed", 0), FAULT_SALT, round_idx, client_id, attempt
        )

    def to_dict(self) -> dict:
        """JSON-scalar description; see :func:`fault_schedule_from_dict`."""
        spec: Dict[str, object] = {"type": type(self).__name__}
        for name in ("rate", "seed", "min_fraction", "max_fraction",
                     "mode", "scale", "max_delay", "kinds"):
            if hasattr(self, name):
                value = getattr(self, name)
                spec[name] = list(value) if isinstance(value, tuple) else value
        return spec

    # Schedules are pure functions of their scalar parameters, so value
    # equality is description equality — this is what makes
    # TrainerConfig.to_dict()/from_dict() a true round-trip.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return type(other) is type(self) and other.to_dict() == self.to_dict()

    def __hash__(self) -> int:
        return hash(repr(self.to_dict()))


class NoFaults(FaultSchedule):
    """The default: no device ever faults.

    With this schedule the trainer's behavior — entropy consumption, task
    construction, histories — is bit-identical to a trainer that predates
    the fault subsystem.
    """

    enabled = False

    def draw(
        self, round_idx: int, client_id: int, attempt: int = 0
    ) -> Optional[FaultDecision]:
        return None

    def to_dict(self) -> dict:
        return {"type": "NoFaults"}


#: Shared no-fault instance; use instead of constructing.
NO_FAULTS = NoFaults()


class _RateFaults(FaultSchedule):
    """Common base for schedules striking independently at a fixed rate."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = float(rate)
        self.seed = int(seed)

    def draw(
        self, round_idx: int, client_id: int, attempt: int = 0
    ) -> Optional[FaultDecision]:
        rng = self._rng(round_idx, client_id, attempt)
        if rng.uniform() >= self.rate:
            return None
        return self._decision(rng)

    def _decision(self, rng: np.random.Generator) -> FaultDecision:
        raise NotImplementedError


class CrashFaults(_RateFaults):
    """Devices crash mid-solve with probability ``rate``.

    The completed fraction of the step budget is drawn uniformly from
    ``[min_fraction, max_fraction]`` — the paper's partial-work regime,
    triggered by a failure instead of a known budget.
    """

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        min_fraction: float = 0.1,
        max_fraction: float = 0.9,
    ) -> None:
        super().__init__(rate, seed)
        if not 0.0 < min_fraction <= max_fraction <= 1.0:
            raise ValueError("need 0 < min_fraction <= max_fraction <= 1")
        self.min_fraction = float(min_fraction)
        self.max_fraction = float(max_fraction)

    def _decision(self, rng: np.random.Generator) -> FaultDecision:
        return FaultDecision(
            kind="crash",
            fraction=float(rng.uniform(self.min_fraction, self.max_fraction)),
        )


class DropoutFaults(_RateFaults):
    """Devices go offline for whole rounds with probability ``rate``."""

    def _decision(self, rng: np.random.Generator) -> FaultDecision:
        return FaultDecision(kind="dropout")


class CorruptionFaults(_RateFaults):
    """Delivered updates are corrupted with probability ``rate``.

    ``mode="nan"`` poisons a subset of coordinates with NaNs (detectable —
    the policy's quarantine guard catches it); ``mode="noise"`` adds
    Gaussian noise at ``scale`` times the update's RMS magnitude (silent).
    """

    def __init__(
        self, rate: float, seed: int = 0, mode: str = "nan", scale: float = 1.0
    ) -> None:
        super().__init__(rate, seed)
        if mode not in CORRUPT_MODES:
            raise ValueError(f"mode must be one of {CORRUPT_MODES}")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.mode = mode
        self.scale = float(scale)

    def _decision(self, rng: np.random.Generator) -> FaultDecision:
        return FaultDecision(kind="corrupt", mode=self.mode, scale=self.scale)


class StaleFaults(_RateFaults):
    """Updates are delivered late with probability ``rate``.

    The delay is drawn uniformly from ``{1, ..., max_delay}`` rounds.
    """

    def __init__(self, rate: float, seed: int = 0, max_delay: int = 3) -> None:
        super().__init__(rate, seed)
        if max_delay < 1:
            raise ValueError("max_delay must be at least 1")
        self.max_delay = int(max_delay)

    def _decision(self, rng: np.random.Generator) -> FaultDecision:
        return FaultDecision(
            kind="stale", delay=int(rng.integers(1, self.max_delay + 1))
        )


class ChaosFaults(_RateFaults):
    """Chaos mode: faults strike at ``rate``, sampling uniformly over kinds.

    Parameters
    ----------
    rate:
        Per-(round, device) fault probability.
    seed:
        Base seed on the shared entropy pipeline.
    kinds:
        The fault kinds to sample from (default: all of
        :data:`FAULT_KINDS`).
    min_fraction, max_fraction, mode, scale, max_delay:
        Kind-specific parameters, as on the dedicated schedules.
    """

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        kinds: Sequence[str] = FAULT_KINDS,
        min_fraction: float = 0.1,
        max_fraction: float = 0.9,
        mode: str = "nan",
        scale: float = 1.0,
        max_delay: int = 3,
    ) -> None:
        super().__init__(rate, seed)
        kinds = tuple(kinds)
        if not kinds or any(k not in FAULT_KINDS for k in kinds):
            raise ValueError(f"kinds must be a non-empty subset of {FAULT_KINDS}")
        if not 0.0 < min_fraction <= max_fraction <= 1.0:
            raise ValueError("need 0 < min_fraction <= max_fraction <= 1")
        if mode not in CORRUPT_MODES:
            raise ValueError(f"mode must be one of {CORRUPT_MODES}")
        if max_delay < 1:
            raise ValueError("max_delay must be at least 1")
        self.kinds = kinds
        self.min_fraction = float(min_fraction)
        self.max_fraction = float(max_fraction)
        self.mode = mode
        self.scale = float(scale)
        self.max_delay = int(max_delay)

    def _decision(self, rng: np.random.Generator) -> FaultDecision:
        kind = self.kinds[int(rng.integers(len(self.kinds)))]
        if kind == "crash":
            return FaultDecision(
                kind="crash",
                fraction=float(
                    rng.uniform(self.min_fraction, self.max_fraction)
                ),
            )
        if kind == "dropout":
            return FaultDecision(kind="dropout")
        if kind == "corrupt":
            return FaultDecision(
                kind="corrupt", mode=self.mode, scale=self.scale
            )
        return FaultDecision(
            kind="stale", delay=int(rng.integers(1, self.max_delay + 1))
        )


class ComposeFaults(FaultSchedule):
    """First-match composition of independent fault schedules.

    Each member draws independently (its own seed stream); the first
    non-``None`` decision wins, so earlier members take precedence when
    multiple faults would strike the same solve.
    """

    def __init__(self, schedules: Sequence[FaultSchedule]) -> None:
        schedules = list(schedules)
        if not schedules:
            raise ValueError("ComposeFaults requires at least one schedule")
        for s in schedules:
            if not isinstance(s, FaultSchedule):
                raise TypeError(
                    f"expected FaultSchedule members, got {type(s).__name__}"
                )
        self.schedules = schedules

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return any(s.enabled for s in self.schedules)

    def draw(
        self, round_idx: int, client_id: int, attempt: int = 0
    ) -> Optional[FaultDecision]:
        for schedule in self.schedules:
            decision = schedule.draw(round_idx, client_id, attempt)
            if decision is not None:
                return decision
        return None

    def to_dict(self) -> dict:
        return {
            "type": "ComposeFaults",
            "schedules": [s.to_dict() for s in self.schedules],
        }


_SCHEDULE_TYPES = {
    cls.__name__: cls
    for cls in (
        NoFaults,
        CrashFaults,
        DropoutFaults,
        CorruptionFaults,
        StaleFaults,
        ChaosFaults,
    )
}


def fault_schedule_from_dict(spec: dict) -> FaultSchedule:
    """Rebuild a schedule from its :meth:`FaultSchedule.to_dict` form."""
    spec = dict(spec)
    name = spec.pop("type", None)
    if name == "ComposeFaults":
        return ComposeFaults(
            [fault_schedule_from_dict(s) for s in spec.get("schedules", [])]
        )
    cls = _SCHEDULE_TYPES.get(name)
    if cls is None:
        raise ValueError(f"unknown fault schedule type {name!r}")
    if "kinds" in spec:
        spec["kinds"] = tuple(spec["kinds"])
    return cls(**spec)


def resolve_faults(faults: Optional[FaultSchedule]) -> FaultSchedule:
    """Normalize an optional faults argument (``None`` → :data:`NO_FAULTS`)."""
    if faults is None:
        return NO_FAULTS
    if not isinstance(faults, FaultSchedule):
        raise TypeError(
            f"faults must be a FaultSchedule or None, got {type(faults).__name__}"
        )
    return faults
